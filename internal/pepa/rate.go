package pepa

import (
	"fmt"
	"math"
)

// Rate is an activity rate: either an active exponential rate Value>0,
// or passive (the PEPA ⊤) with a relative Weight (default 1). A passive
// activity must be synchronised with an active partner somewhere in the
// enclosing cooperation context.
type Rate struct {
	Value   float64
	Passive bool
	Weight  float64
}

// ActiveRate returns an active rate.
func ActiveRate(v float64) Rate {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("pepa: invalid active rate %g", v))
	}
	return Rate{Value: v}
}

// PassiveRate returns the passive rate ⊤ with weight 1.
func PassiveRate() Rate { return Rate{Passive: true, Weight: 1} }

// WeightedPassive returns a passive rate with the given weight.
func WeightedPassive(w float64) Rate {
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("pepa: invalid passive weight %g", w))
	}
	return Rate{Passive: true, Weight: w}
}

func (r Rate) String() string {
	if r.Passive {
		if r.Weight == 1 { //vet:allow floatcmp: weights are set, not computed; 1 is the unweighted default
			return "T"
		}
		return fmt.Sprintf("%g*T", r.Weight)
	}
	return fmt.Sprintf("%g", r.Value)
}

// apparent accumulates the apparent rate of one action in one
// component: the total active rate and the total passive weight.
// PEPA forbids mixing active and passive activities of the same type
// in one component; derivation reports that as an error.
type apparent struct {
	active  float64
	passive float64 // total passive weight
}

func (a apparent) mixed() bool { return a.active > 0 && a.passive > 0 }

// combine computes the rate of a shared activity from the local rates
// r1, r2 and the apparent rates a1, a2 of the action in the two
// cooperating components (Hillston's definition):
//
//	R = (r1 / ra(P)) * (r2 / ra(Q)) * min(ra(P), ra(Q))
//
// with ⊤ treated as infinite, so an active side always bounds a
// passive side.
func combine(r1, r2 Rate, a1, a2 apparent) Rate {
	switch {
	case !r1.Passive && !r2.Passive:
		// Both active: r1*r2/max(ra1, ra2).
		return ActiveRate(r1.Value * r2.Value / math.Max(a1.active, a2.active))
	case !r1.Passive && r2.Passive:
		return ActiveRate(r1.Value * (r2.Weight / a2.passive))
	case r1.Passive && !r2.Passive:
		return ActiveRate(r2.Value * (r1.Weight / a1.passive))
	default:
		// Both passive: still passive, weights scale.
		w := (r1.Weight / a1.passive) * (r2.Weight / a2.passive) * math.Min(a1.passive, a2.passive)
		return WeightedPassive(w)
	}
}
