package pepa

import (
	"strings"
	"testing"

	"pepatags/internal/numeric"
)

const roundTripSrc = `
	P = (a, 2).P1 + (b, 1).P;
	P1 = (b, 0.5*T).(d, 3).P + (b, 1.5*T).P;
	Q = (b, 4).Q;
	(P <b> Q) / {d}
	`

func TestSourceRoundTrip(t *testing.T) {
	m1 := mustParse(t, roundTripSrc)
	src := m1.Source()
	m2, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse printed source: %v\n%s", err, src)
	}
	ss1 := mustDerive(t, m1)
	ss2 := mustDerive(t, m2)
	if ss1.Chain.NumStates() != ss2.Chain.NumStates() {
		t.Fatalf("states %d vs %d", ss1.Chain.NumStates(), ss2.Chain.NumStates())
	}
	pi1, err := ss1.Chain.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	pi2, err := ss2.Chain.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range ss1.Chain.Actions() {
		x1 := ss1.Chain.ActionThroughput(pi1, a)
		x2 := ss2.Chain.ActionThroughput(pi2, a)
		if !numeric.AlmostEqual(x1, x2, 1e-12) {
			t.Fatalf("throughput of %s differs: %v vs %v", a, x1, x2)
		}
	}
}

func TestSourceContainsHidingAndWeights(t *testing.T) {
	m := mustParse(t, roundTripSrc)
	src := m.Source()
	if !strings.Contains(src, "/ {d}") {
		t.Fatalf("hiding lost:\n%s", src)
	}
	if !strings.Contains(src, "*T") {
		t.Fatalf("weighted passive lost:\n%s", src)
	}
	if !strings.Contains(src, "<b>") {
		t.Fatalf("cooperation set lost:\n%s", src)
	}
}

func TestSourceAnonymousLeafPanics(t *testing.T) {
	m := NewModel()
	m.Define("P", Pre("a", ActiveRate(1), Ref("P")))
	m.System = &Leaf{Init: Pre("a", ActiveRate(1), Ref("P"))}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for anonymous leaf")
		}
	}()
	_ = m.Source()
}

func TestAlphabet(t *testing.T) {
	m := mustParse(t, roundTripSrc)
	acts, err := m.Alphabet()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "d"}
	if len(acts) != len(want) {
		t.Fatalf("alphabet %v", acts)
	}
	for i := range want {
		if acts[i] != want[i] {
			t.Fatalf("alphabet %v want %v", acts, want)
		}
	}
}

func TestAlphabetUndefinedConstant(t *testing.T) {
	m := NewModel()
	m.Define("P", Pre("a", ActiveRate(1), Ref("Missing")))
	m.System = &Leaf{Init: Ref("P")}
	if _, err := m.Alphabet(); err == nil {
		t.Fatal("expected undefined-constant error")
	}
}

func TestCheckCyclicAccepts(t *testing.T) {
	m := mustParse(t, roundTripSrc)
	if err := m.CheckCyclic(); err != nil {
		t.Fatalf("cyclic model rejected: %v", err)
	}
}

func TestCheckCyclicRejectsOneWayComponent(t *testing.T) {
	// P drifts into a sink loop that never returns to P.
	src := `
	P = (a, 1).Sink;
	Sink = (b, 1).Sink;
	P
	`
	m := mustParse(t, src)
	if err := m.CheckCyclic(); err == nil {
		t.Fatal("non-cyclic component accepted")
	}
}

func TestCheckCyclicTAGModelShape(t *testing.T) {
	// The paper's own models are cyclic; a queue fragment modelled as in
	// Figure 3 passes the syntactic check.
	src := `
	Q0 = (arrival, 5).Q1;
	Q1 = (arrival, 5).Q2 + (service, T).Q0;
	Q2 = (service, T).Q1;
	S = (service, 10).S;
	Q0 <service> S
	`
	m := mustParse(t, src)
	if err := m.CheckCyclic(); err != nil {
		t.Fatal(err)
	}
}
