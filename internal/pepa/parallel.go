package pepa

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pepatags/internal/ctmc"
	"pepatags/internal/obsv"
)

// Parallel state-space derivation over integer-coded states.
//
// The exploration is level-synchronous BFS: all states at frontier
// depth d are expanded before any state at depth d+1. Within a level
// the frontier is split into contiguous chunks, one per worker; each
// worker generates successors through its own reusable evaluation
// scratch (code.go), materialises fresh states into its own slab
// arenas, and interns them into a visited set sharded by the integer
// tuple hash. No strings are built and no per-state heap objects are
// allocated on the exploration path; labels and the transition list
// are assembled once at the end, in parallel chunks.
//
// Determinism: the serial engine (derive.go) numbers states in FIFO
// discovery order, i.e. sorted by (level, position of the discovering
// parent within its level, index of the discovering move). Workers
// record exactly that discovery rank on every tentative state — taking
// the minimum under the shard lock when several parents of one level
// reach the same state — and a post-pass sort per level assigns final
// indices in rank order. Edges are emitted per worker in (parent,
// move) order and workers own contiguous parent ranges, so
// concatenating the per-worker edge chunks in worker order, level by
// level, reproduces the serial transition list exactly. The result is
// bit-identical to deriveSerial (and to the string-keyed
// deriveReference) for any worker count.
//
// Scaling: each worker's per-level work is pure CPU over its own
// memory; the only shared mutable structure is the striped visited
// set, whose critical section is a hash-chain walk of a few integer
// comparisons. On a machine that exposes a single CPU the pool
// degenerates gracefully — small frontiers are expanded inline on the
// coordinator, so the remaining cost over serial is one goroutine
// spawn per worker per large level.

// numShards stripes the visited-state hash. A power of two well above
// typical worker counts keeps lock contention negligible; selection
// uses the top bits of the tuple hash, whose low bits the shard map
// uses for its own buckets.
const numShards = 128

// minStatesPerWorker bounds how thin a level may be sliced: spawning a
// goroutine for a handful of states costs more than expanding them
// inline, so levels below 2*minStatesPerWorker run on the coordinator.
const minStatesPerWorker = 8

// prec is one interned global state during parallel exploration. The
// records live in per-worker slabs; codes points into a per-worker
// u32slab block.
type prec struct {
	codes []uint32
	next  *prec  // hash-chain link among states sharing a 64-bit hash
	rank  uint64 // discovery rank within the level that first saw it
	id    int32  // final BFS index; -1 while tentative in the current level
}

// rankOf packs (parent position in level, move index) so that integer
// order equals lexicographic discovery order. Move indices fit easily
// in 24 bits: a single state never has millions of outgoing moves.
func rankOf(parentPos, moveIdx int) uint64 {
	return uint64(parentPos)<<24 | uint64(moveIdx)
}

type shard struct {
	mu sync.Mutex
	m  map[uint64]*prec
}

// pedge is a discovered transition; the target is resolved to its
// final index only after the level's rank sort.
type pedge struct {
	to   *prec
	rate float64
	from int32
	act  int32
}

// precSlab block-allocates prec records so a million interned states
// cost a few hundred allocations. Pointers into a block stay valid:
// blocks are abandoned when full, never grown.
type precSlab struct {
	block []prec
}

const precSlabBlock = 2048

func (s *precSlab) alloc() *prec {
	if len(s.block) == cap(s.block) {
		s.block = make([]prec, 0, precSlabBlock)
	}
	s.block = s.block[:len(s.block)+1]
	return &s.block[len(s.block)-1]
}

// pworker is the per-worker mutable state, reused across levels.
type pworker struct {
	sc     evalScratch
	codes  u32slab
	precs  precSlab
	fresh  []*prec
	edges  []pedge
	dedup  int64
	coll   int64
	err    error
	errPos int // parent position of err within the level (for first-error order)
}

func deriveParallel(cd *coded, maxStates, workers int, opts DeriveOptions) (*StateSpace, error) {
	start := time.Now()
	stats := opts.Stats
	if stats != nil {
		*stats = obsv.DeriveStats{Workers: workers, LeafCodes: len(cd.keys)}
		defer func() { stats.Elapsed = time.Since(start) }()
	}
	nLeaf := cd.nLeaf

	shards := make([]shard, numShards)
	for i := range shards {
		shards[i].m = make(map[uint64]*prec, 64)
	}
	shardOf := func(h uint64) *shard { return &shards[h>>(64-7)] } // top log2(numShards) bits

	rootCodes := make([]uint32, nLeaf)
	copy(rootCodes, cd.initState)
	root := &prec{codes: rootCodes, id: 0}
	{
		h := hashTuple(rootCodes)
		shardOf(h).m[h] = root
	}

	states := []*prec{root} // in final-index order
	var edgeChunks [][]pedge
	frontier := []*prec{root}
	level := 0

	ws := make([]*pworker, workers)
	for i := range ws {
		ws[i] = &pworker{}
	}

	// explore expands the frontier chunk [lo, hi) into w's buffers and
	// interns successors. Fresh-state materialisation reserves slab
	// space before taking the shard lock and rolls the reservation back
	// on a lost race, so the critical section is a chain walk plus a
	// map write.
	explore := func(w *pworker, lo, hi int) {
		w.fresh = w.fresh[:0]
		w.edges = w.edges[:0]
		for pos := lo; pos < hi; pos++ {
			cur := frontier[pos]
			mlo, mhi, err := cd.genMoves(cur.codes, &w.sc)
			if err == nil && mhi == mlo {
				err = deadlockError(cd.label(cur.codes))
			}
			if err != nil {
				w.err, w.errPos = err, pos
				return
			}
			for k := mlo; k < mhi; k++ {
				mv := &w.sc.moves[k]
				if mv.rate.Passive {
					w.err = unsyncPassiveError(cd.actNames[mv.act], cd.label(cur.codes))
					w.errPos = pos
					return
				}
				succ := cd.successor(cur.codes, mv, &w.sc)
				h := hashTuple(succ)
				rank := rankOf(pos, k-mlo)
				sh := shardOf(h)
				sh.mu.Lock()
				head := sh.m[h]
				var rec *prec
				for r := head; r != nil; r = r.next {
					if equalTuple(r.codes, succ) {
						rec = r
						break
					}
				}
				if rec == nil {
					rec = w.precs.alloc()
					rec.codes = w.codes.alloc(nLeaf)
					copy(rec.codes, succ)
					rec.next = head
					rec.rank = rank
					rec.id = -1
					sh.m[h] = rec
					sh.mu.Unlock()
					if head != nil {
						w.coll++
					}
					w.fresh = append(w.fresh, rec)
				} else {
					if rec.id < 0 && rank < rec.rank {
						// Tentative in this level: keep the earliest
						// discovery so the post-sort matches serial.
						rec.rank = rank
					}
					sh.mu.Unlock()
					w.dedup++
				}
				w.edges = append(w.edges, pedge{to: rec, rate: mv.rate.Value, from: cur.id, act: mv.act})
			}
		}
	}

	for len(frontier) > 0 {
		// Thin levels are not worth fanning out; expand them inline.
		w := len(frontier) / minStatesPerWorker
		if w > workers {
			w = workers
		}
		if w <= 1 {
			explore(ws[0], 0, len(frontier))
			if ws[0].err != nil {
				return nil, ws[0].err
			}
		} else {
			var wg sync.WaitGroup
			for i := 0; i < w; i++ {
				lo := i * len(frontier) / w
				hi := (i + 1) * len(frontier) / w
				wg.Add(1)
				go func(w *pworker, lo, hi int) {
					defer wg.Done()
					explore(w, lo, hi)
				}(ws[i], lo, hi)
			}
			wg.Wait()
			// Surface the error the serial scan would have hit first.
			var firstErr error
			firstPos := -1
			for i := 0; i < w; i++ {
				if ws[i].err != nil && (firstPos < 0 || ws[i].errPos < firstPos) {
					firstErr, firstPos = ws[i].err, ws[i].errPos
				}
			}
			if firstErr != nil {
				return nil, firstErr
			}
		}
		used := 1
		if w > 1 {
			used = w
		}

		// Deterministic renumbering: collect this level's tentative
		// states and sort by discovery rank == serial FIFO order.
		var fresh []*prec
		for i := 0; i < used; i++ {
			fresh = append(fresh, ws[i].fresh...)
			if stats != nil {
				stats.DedupHits += ws[i].dedup
				stats.HashCollisions += ws[i].coll
			}
			ws[i].dedup, ws[i].coll = 0, 0
		}
		sort.Slice(fresh, func(a, b int) bool { return fresh[a].rank < fresh[b].rank })
		for _, rec := range fresh {
			rec.id = int32(len(states))
			states = append(states, rec)
		}
		if len(states) > maxStates {
			return nil, fmt.Errorf("pepa: state space exceeds %d states", maxStates)
		}
		for i := 0; i < used; i++ {
			if len(ws[i].edges) > 0 {
				chunk := make([]pedge, len(ws[i].edges))
				copy(chunk, ws[i].edges)
				edgeChunks = append(edgeChunks, chunk)
			}
		}

		level++
		if stats != nil {
			stats.States = len(states)
			stats.Levels = level
		}
		if opts.Progress != nil {
			opts.Progress(obsv.Progress{Phase: "derive", Step: level, Count: len(states), Value: float64(len(fresh))})
		}
		frontier = fresh
	}

	// Assembly, streamed from the per-worker chunks: the final state
	// order is fixed, so the codes table, the labels and the transition
	// list are each filled by independent parallel chunks into
	// exactly-sized slices — no builder, no global append.
	n := len(states)
	codes := make([]uint32, n*nLeaf)
	parallelFor(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(codes[i*nLeaf:(i+1)*nLeaf], states[i].codes)
		}
	})
	offs := make([]int, len(edgeChunks)+1)
	for i, ch := range edgeChunks {
		offs[i+1] = offs[i] + len(ch)
	}
	trans := make([]ctmc.Transition, offs[len(edgeChunks)])
	parallelFor(workers, len(edgeChunks), func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			out := trans[offs[ci]:]
			for k, e := range edgeChunks[ci] {
				out[k] = ctmc.Transition{From: int(e.from), To: int(e.to.id), Rate: e.rate, Action: cd.actNames[e.act]}
			}
		}
	})
	if stats != nil {
		stats.Transitions = len(trans)
	}
	return &StateSpace{
		Chain:    ctmc.NewChain(cd.buildLabels(codes, n, workers), trans),
		NumLeaf:  nLeaf,
		codes:    codes,
		codeKeys: cd.keys,
	}, nil
}
