package pepa

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pepatags/internal/ctmc"
	"pepatags/internal/obsv"
)

// Parallel state-space derivation.
//
// The exploration is level-synchronous BFS: all states at frontier
// depth d are expanded before any state at depth d+1. Within a level
// the frontier is split into contiguous chunks, one per worker; each
// worker generates successors (the expensive part: apparent-rate
// combination, leaf updates, canonical key construction) and interns
// them into a sharded, lock-striped hash of the whole visited set.
//
// Determinism: the serial reference (derive.go) numbers states in FIFO
// discovery order, i.e. sorted by (level, position of the discovering
// parent within its level, index of the discovering move). Workers
// record exactly that discovery rank on every tentative state — taking
// the minimum under the shard lock when several parents of one level
// reach the same state — and a post-pass sort per level assigns final
// indices in rank order. Edges are emitted per worker in (parent,
// move) order and workers own contiguous parent ranges, so
// concatenating the per-worker edge lists in worker order reproduces
// the serial transition list exactly. The result is bit-identical to
// deriveSerial for any worker count.

// numShards stripes the visited-state hash. A power of two well above
// typical worker counts keeps lock contention negligible.
const numShards = 128

// pstate is one interned global state during parallel exploration.
type pstate struct {
	state []Process
	key   string
	id    int    // final BFS index; -1 while tentative in the current level
	rank  uint64 // discovery rank within the level that first saw it
}

// rankOf packs (parent position in level, move index) so that integer
// order equals lexicographic discovery order. Move indices fit easily
// in 24 bits: a single state never has millions of outgoing moves.
func rankOf(parentPos, moveIdx int) uint64 {
	return uint64(parentPos)<<24 | uint64(moveIdx)
}

type shard struct {
	mu sync.Mutex
	m  map[string]*pstate
}

func shardIndex(key string) int {
	// FNV-1a; inlined to avoid the hash.Hash interface allocation.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h & (numShards - 1))
}

// pedge is a discovered transition; the target is resolved to its
// final index only after the level's rank sort.
type pedge struct {
	from   int
	to     *pstate
	rate   float64
	action string
}

// workerResult is what one worker hands back for one level.
type workerResult struct {
	edges     []pedge
	fresh     []*pstate // tentative states this worker won the insert for
	dedupHits int64
	err       error
	errPos    int // parent position of err within the level (for first-error order)
}

func deriveParallel(cc *compiled, nLeaf, maxStates, workers int, opts DeriveOptions) (*StateSpace, error) {
	start := time.Now()
	stats := opts.Stats
	if stats != nil {
		*stats = obsv.DeriveStats{Workers: workers}
		defer func() { stats.Elapsed = time.Since(start) }()
	}

	shards := make([]*shard, numShards)
	for i := range shards {
		shards[i] = &shard{m: make(map[string]*pstate)}
	}

	init := make([]Process, nLeaf)
	for i, l := range cc.leaves {
		init[i] = l.Init
	}
	root := &pstate{state: init, key: cc.stateKey(init), id: 0}
	shards[shardIndex(root.key)].m[root.key] = root

	states := []*pstate{root} // in final-index order
	var levelEdges [][]pedge  // per level, already in serial order
	frontier := []*pstate{root}
	level := 0

	// explore expands the frontier chunk [lo, hi) and interns
	// successors. It is the per-worker body; everything it touches in
	// cc is either immutable or a sync.Map.
	explore := func(lo, hi int, res *workerResult) {
		for pos := lo; pos < hi; pos++ {
			cur := frontier[pos]
			var zero int
			ms, err := cc.moves(cc.node, cur.state, &zero)
			if err == nil && len(ms) == 0 {
				err = deadlockError(cur.key)
			}
			if err != nil {
				res.err, res.errPos = err, pos
				return
			}
			for k, mv := range ms {
				if mv.rate.Passive {
					res.err = unsyncPassiveError(mv.action, cur.key)
					res.errPos = pos
					return
				}
				next := make([]Process, nLeaf)
				copy(next, cur.state)
				for _, ch := range mv.changes {
					next[ch.leaf] = ch.next
				}
				key := cc.stateKey(next)
				rank := rankOf(pos, k)
				sh := shards[shardIndex(key)]
				sh.mu.Lock()
				rec, seen := sh.m[key]
				if !seen {
					rec = &pstate{state: next, key: key, id: -1, rank: rank}
					sh.m[key] = rec
					sh.mu.Unlock()
					res.fresh = append(res.fresh, rec)
				} else {
					if rec.id < 0 && rank < rec.rank {
						// Tentative in this level: keep the earliest
						// discovery so the post-sort matches serial.
						rec.rank = rank
					}
					sh.mu.Unlock()
					res.dedupHits++
				}
				res.edges = append(res.edges, pedge{from: cur.id, to: rec, rate: mv.rate.Value, action: mv.action})
			}
		}
	}

	for len(frontier) > 0 {
		w := workers
		if w > len(frontier) {
			w = len(frontier)
		}
		results := make([]workerResult, w)
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			lo := i * len(frontier) / w
			hi := (i + 1) * len(frontier) / w
			wg.Add(1)
			go func(lo, hi int, res *workerResult) {
				defer wg.Done()
				explore(lo, hi, res)
			}(lo, hi, &results[i])
		}
		wg.Wait()

		// Surface the error the serial scan would have hit first.
		var firstErr error
		firstPos := -1
		for i := range results {
			if results[i].err != nil && (firstPos < 0 || results[i].errPos < firstPos) {
				firstErr, firstPos = results[i].err, results[i].errPos
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}

		// Deterministic renumbering: collect this level's tentative
		// states and sort by discovery rank == serial FIFO order.
		var fresh []*pstate
		var edgeCount int
		for i := range results {
			fresh = append(fresh, results[i].fresh...)
			edgeCount += len(results[i].edges)
			if stats != nil {
				stats.DedupHits += results[i].dedupHits
			}
		}
		sort.Slice(fresh, func(a, b int) bool { return fresh[a].rank < fresh[b].rank })
		for _, rec := range fresh {
			rec.id = len(states)
			states = append(states, rec)
		}
		if len(states) > maxStates {
			return nil, fmt.Errorf("pepa: state space exceeds %d states", maxStates)
		}

		edges := make([]pedge, 0, edgeCount)
		for i := range results {
			edges = append(edges, results[i].edges...)
		}
		levelEdges = append(levelEdges, edges)

		level++
		if stats != nil {
			stats.States = len(states)
			stats.Levels = level
		}
		if opts.Progress != nil {
			opts.Progress(obsv.Progress{Phase: "derive", Step: level, Count: len(states), Value: float64(len(fresh))})
		}
		frontier = fresh
	}

	// Materialise the chain in the same order the serial path would:
	// states by index, then edges level by level.
	b := ctmc.NewBuilder()
	leafKeys := make([][]string, len(states))
	for i, rec := range states {
		if got := b.State(rec.key); got != i {
			panic(fmt.Sprintf("pepa: parallel renumbering out of order (%d != %d)", got, i))
		}
		lk := make([]string, nLeaf)
		for j, p := range rec.state {
			lk[j] = cc.key(p)
		}
		leafKeys[i] = lk
	}
	var nTrans int
	for _, edges := range levelEdges {
		nTrans += len(edges)
		for _, e := range edges {
			b.Transition(e.from, e.to.id, e.rate, e.action)
		}
	}
	if stats != nil {
		stats.Transitions = nTrans
	}
	return &StateSpace{Chain: b.Build(), NumLeaf: nLeaf, leafKeys: leafKeys}, nil
}
