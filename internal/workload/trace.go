package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"

	"pepatags/internal/dist"
)

// TraceSchema identifies the JSON-lines trace format: a header line
//
//	{"schema":"pepatags/sim-trace/v1","jobs":N}
//
// followed by one job object per line,
//
//	{"id":1,"at":0.25,"size":3.5}
//
// with ids strictly increasing, arrival times ("at") finite and
// non-decreasing, and sizes finite and positive. The format is the
// interchange point between trace generators, recorded pod-style
// arrival logs and `tagssim -trace`: anything that can emit these
// lines can drive the cluster simulator.
const TraceSchema = "pepatags/sim-trace/v1"

type traceHeader struct {
	Schema string `json:"schema"`
	Jobs   int    `json:"jobs"`
}

type traceLine struct {
	ID   int     `json:"id"`
	At   float64 `json:"at"`
	Size float64 `json:"size"`
}

// WriteTrace writes jobs in sim-trace/v1 form. It validates as it
// writes, so a written trace always parses back.
func WriteTrace(w io.Writer, jobs []Job) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Schema: TraceSchema, Jobs: len(jobs)}); err != nil {
		return err
	}
	prevID, prevAt := 0, math.Inf(-1)
	for i, j := range jobs {
		if err := checkTraceJob(i+2, j, prevID, prevAt); err != nil {
			return err
		}
		prevID, prevAt = j.ID, j.Arrival
		if err := enc.Encode(traceLine{ID: j.ID, At: j.Arrival, Size: j.Size}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTrace reads a sim-trace/v1 stream into a replayable Trace.
func ParseTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("workload: trace header: %w", err)
		}
		return nil, fmt.Errorf("workload: empty trace stream")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if hdr.Schema != TraceSchema {
		return nil, fmt.Errorf("workload: trace schema %q, want %q", hdr.Schema, TraceSchema)
	}
	if hdr.Jobs < 0 {
		return nil, fmt.Errorf("workload: trace header: negative job count %d", hdr.Jobs)
	}
	t := &Trace{}
	line := 1
	prevID, prevAt := 0, math.Inf(-1)
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue // tolerate blank lines (trailing newline etc.)
		}
		var tl traceLine
		if err := json.Unmarshal(sc.Bytes(), &tl); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		j := Job{ID: tl.ID, Arrival: tl.At, Size: tl.Size}
		if err := checkTraceJob(line, j, prevID, prevAt); err != nil {
			return nil, err
		}
		prevID, prevAt = j.ID, j.Arrival
		t.Jobs = append(t.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
	}
	if len(t.Jobs) != hdr.Jobs {
		return nil, fmt.Errorf("workload: trace header promises %d jobs, stream has %d", hdr.Jobs, len(t.Jobs))
	}
	return t, nil
}

// checkTraceJob enforces the sim-trace/v1 invariants for one job.
func checkTraceJob(line int, j Job, prevID int, prevAt float64) error {
	if j.ID <= prevID {
		return fmt.Errorf("workload: trace line %d: id %d not greater than previous %d", line, j.ID, prevID)
	}
	if math.IsNaN(j.Arrival) || math.IsInf(j.Arrival, 0) || j.Arrival < 0 {
		return fmt.Errorf("workload: trace line %d: bad arrival %v", line, j.Arrival)
	}
	if j.Arrival < prevAt {
		return fmt.Errorf("workload: trace line %d: arrival %g before previous %g", line, j.Arrival, prevAt)
	}
	if math.IsNaN(j.Size) || math.IsInf(j.Size, 0) || j.Size <= 0 {
		return fmt.Errorf("workload: trace line %d: bad size %v", line, j.Size)
	}
	return nil
}

// GenerateTrace materialises up to n jobs from a source into a concrete
// job slice, the bridge from stochastic workloads to replayable traces.
func GenerateTrace(src Source, rng *rand.Rand, n int) []Job {
	jobs := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		j, ok := src.Next(rng)
		if !ok {
			break
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// BoundedParetoTrace generates an n-job trace with Poisson(lambda)
// arrivals and bounded-Pareto B(k, p, alpha) sizes — the heavy-tailed
// workload under which size-based routing policies separate from
// size-blind ones.
func BoundedParetoTrace(rng *rand.Rand, n int, lambda, k, p, alpha float64) []Job {
	src := &StochasticSource{
		Arrivals: NewPoisson(lambda),
		Sizes:    dist.NewBoundedPareto(k, p, alpha),
		Limit:    n,
	}
	return GenerateTrace(src, rng, n)
}

// MMPPTrace generates an n-job trace with MMPP-2 arrivals (rates
// rate1/rate2, switching rates switch1/switch2) and exponential(mu)
// sizes — the bursty traffic of the paper's Section 7 conjecture.
func MMPPTrace(rng *rand.Rand, n int, rate1, rate2, switch1, switch2, mu float64) []Job {
	src := &StochasticSource{
		Arrivals: NewMMPP2(rate1, rate2, switch1, switch2),
		Sizes:    dist.NewExponential(mu),
		Limit:    n,
	}
	return GenerateTrace(src, rng, n)
}
