package workload

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"pepatags/internal/dist"
	"pepatags/internal/numeric"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+1)) }

func TestPoissonMeanRate(t *testing.T) {
	p := NewPoisson(5)
	r := rng(1)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += p.NextInterarrival(r)
	}
	if !numeric.AlmostEqual(sum/n, 0.2, 0.02) {
		t.Fatalf("mean interarrival %v want 0.2", sum/n)
	}
	if p.MeanRate() != 5 {
		t.Fatal("MeanRate")
	}
}

func TestMMPP2MeanRate(t *testing.T) {
	m := NewMMPP2(20, 1, 0.1, 0.1)
	// pi1 = 0.5: mean rate 10.5.
	if !numeric.AlmostEqual(m.MeanRate(), 10.5, 1e-12) {
		t.Fatalf("MeanRate %v", m.MeanRate())
	}
	r := rng(7)
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += m.NextInterarrival(r)
	}
	empRate := float64(n) / sum
	if math.Abs(empRate-10.5)/10.5 > 0.05 {
		t.Fatalf("empirical rate %v want ~10.5", empRate)
	}
}

func TestMMPP2Burstiness(t *testing.T) {
	// Interarrival SCV of a bursty MMPP must exceed Poisson's 1.
	m := NewMMPP2(50, 0.5, 0.2, 0.2)
	r := rng(3)
	var s, s2 float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := m.NextInterarrival(r)
		s += x
		s2 += x * x
	}
	mean := s / n
	scv := (s2/n - mean*mean) / (mean * mean)
	if scv < 1.5 {
		t.Fatalf("MMPP2 interarrival SCV %v should be well above 1", scv)
	}
}

func TestStochasticSourceLimit(t *testing.T) {
	src := &StochasticSource{Arrivals: NewPoisson(1), Sizes: dist.NewExponential(1), Limit: 5}
	r := rng(2)
	var got []Job
	for {
		j, ok := src.Next(r)
		if !ok {
			break
		}
		got = append(got, j)
	}
	if len(got) != 5 {
		t.Fatalf("jobs %d want 5", len(got))
	}
	// Arrivals strictly increasing, IDs sequential.
	for i := 1; i < len(got); i++ {
		if got[i].Arrival <= got[i-1].Arrival {
			t.Fatal("arrivals not increasing")
		}
		if got[i].ID != got[i-1].ID+1 {
			t.Fatal("IDs not sequential")
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace([]float64{0, 0, 1}, []float64{4, 5, 6})
	var sizes []float64
	for {
		j, ok := tr.Next(nil)
		if !ok {
			break
		}
		sizes = append(sizes, j.Size)
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[2] != 6 {
		t.Fatalf("sizes %v", sizes)
	}
	// Exhausted.
	if _, ok := tr.Next(nil); ok {
		t.Fatal("trace should be exhausted")
	}
	tr.Reset()
	if _, ok := tr.Next(nil); !ok {
		t.Fatal("reset failed")
	}
}

func TestTraceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTrace([]float64{0}, []float64{1, 2})
}

func TestModulatedSourcePhaseSizes(t *testing.T) {
	// Burst jobs drawn from a point mass at 1, base jobs at 100:
	// every job's size reveals its phase.
	src := &ModulatedSource{
		Arrivals:   NewMMPP2(50, 0.5, 0.2, 0.2),
		BurstSizes: dist.Deterministic{Value: 1},
		BaseSizes:  dist.Deterministic{Value: 100},
		Limit:      50000,
	}
	r := rng(9)
	var burst, base int
	for {
		j, ok := src.Next(r)
		if !ok {
			break
		}
		switch j.Size {
		case 1:
			burst++
		case 100:
			base++
		default:
			t.Fatalf("unexpected size %v", j.Size)
		}
	}
	if burst+base != 50000 {
		t.Fatalf("total %d", burst+base)
	}
	// The burst phase carries ~99% of arrivals (50 vs 0.5 at equal
	// occupancy).
	frac := float64(burst) / 50000
	if frac < 0.95 {
		t.Fatalf("burst fraction %v implausibly low", frac)
	}
}

func TestMMPP2InBurstTracksPhase(t *testing.T) {
	m := NewMMPP2(1000, 0.001, 1, 1)
	r := rng(4)
	// With rate1 >> rate2 almost every arrival lands in the burst phase.
	inBurst := 0
	for i := 0; i < 2000; i++ {
		m.NextInterarrival(r)
		if m.InBurst() {
			inBurst++
		}
	}
	if float64(inBurst)/2000 < 0.95 {
		t.Fatalf("burst-phase fraction %v too low", float64(inBurst)/2000)
	}
}

func TestLoadTraceCSV(t *testing.T) {
	src := "arrival,size\n0,4\n0,5\n1.5,2\n"
	tr, err := LoadTraceCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 3 || tr.Jobs[2].Arrival != 1.5 || tr.Jobs[1].Size != 5 {
		t.Fatalf("trace %+v", tr.Jobs)
	}
}

func TestLoadTraceCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"negative size":  "0,4\n1,-2\n",
		"decreasing":     "5,1\n1,1\n",
		"bad number mid": "0,1\nx,y\n",
	}
	for name, src := range cases {
		if _, err := LoadTraceCSV(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
