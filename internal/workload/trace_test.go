package workload

import (
	"bytes"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceV1RoundTrip is the parse→write→parse golden test: a
// generated trace written to sim-trace/v1 must parse back to identical
// jobs, and the serialised bytes must be stable across a second lap.
func TestTraceV1RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 8))
	jobs := BoundedParetoTrace(rng, 500, 2.5, 0.5, 1000, 1.1)
	if len(jobs) != 500 {
		t.Fatalf("generated %d jobs, want 500", len(jobs))
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	tr, err := ParseTrace(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != len(jobs) {
		t.Fatalf("parsed %d jobs, want %d", len(tr.Jobs), len(jobs))
	}
	for i := range jobs {
		if jobs[i] != tr.Jobs[i] {
			t.Fatalf("job %d: %+v != %+v", i, jobs[i], tr.Jobs[i])
		}
	}

	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, tr.Jobs); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatal("second serialisation differs from the first")
	}
}

// TestTraceGolden parses the committed golden file and pins its
// contents, so the on-disk format can never drift silently.
func TestTraceGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "trace_v1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want := []Job{
		{ID: 1, Arrival: 0, Size: 2.5},
		{ID: 2, Arrival: 0.25, Size: 0.5},
		{ID: 4, Arrival: 0.25, Size: 1},
		{ID: 7, Arrival: 3.5, Size: 0.125},
	}
	if len(tr.Jobs) != len(want) {
		t.Fatalf("parsed %d jobs, want %d", len(tr.Jobs), len(want))
	}
	for i := range want {
		if tr.Jobs[i] != want[i] {
			t.Fatalf("job %d: %+v, want %+v", i, tr.Jobs[i], want[i])
		}
	}

	// Writing the parsed jobs reproduces the golden bytes exactly.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr.Jobs); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(data) {
		t.Fatalf("round-trip differs from golden file:\n%s", buf.String())
	}
}

// TestTraceParseErrors covers every validation branch of the parser.
func TestTraceParseErrors(t *testing.T) {
	hdr := `{"schema":"pepatags/sim-trace/v1","jobs":1}` + "\n"
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header json", "not json\n"},
		{"wrong schema", `{"schema":"pepatags/sim-trace/v2","jobs":0}` + "\n"},
		{"negative count", `{"schema":"pepatags/sim-trace/v1","jobs":-1}` + "\n"},
		{"bad line json", hdr + "nope\n"},
		{"zero id", hdr + `{"id":0,"at":1,"size":1}` + "\n"},
		{"duplicate id", strings.Replace(hdr, `"jobs":1`, `"jobs":2`, 1) +
			`{"id":1,"at":1,"size":1}` + "\n" + `{"id":1,"at":2,"size":1}` + "\n"},
		{"negative arrival", hdr + `{"id":1,"at":-1,"size":1}` + "\n"},
		{"nan arrival", hdr + `{"id":1,"at":"x","size":1}` + "\n"},
		{"decreasing arrivals", strings.Replace(hdr, `"jobs":1`, `"jobs":2`, 1) +
			`{"id":1,"at":5,"size":1}` + "\n" + `{"id":2,"at":4,"size":1}` + "\n"},
		{"zero size", hdr + `{"id":1,"at":0,"size":0}` + "\n"},
		{"negative size", hdr + `{"id":1,"at":0,"size":-2}` + "\n"},
		{"count mismatch", hdr},
	}
	for _, tc := range cases {
		if _, err := ParseTrace(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected parse error", tc.name)
		}
	}
}

// TestWriteTraceRejectsBadJobs mirrors the parser checks on the writer.
func TestWriteTraceRejectsBadJobs(t *testing.T) {
	bad := [][]Job{
		{{ID: 0, Arrival: 0, Size: 1}},
		{{ID: 1, Arrival: 0, Size: 1}, {ID: 1, Arrival: 1, Size: 1}},
		{{ID: 1, Arrival: -1, Size: 1}},
		{{ID: 1, Arrival: math.NaN(), Size: 1}},
		{{ID: 1, Arrival: 0, Size: 0}},
		{{ID: 1, Arrival: 0, Size: math.Inf(1)}},
		{{ID: 1, Arrival: 5, Size: 1}, {ID: 2, Arrival: 4, Size: 1}},
	}
	for i, jobs := range bad {
		if err := WriteTrace(&bytes.Buffer{}, jobs); err == nil {
			t.Errorf("case %d: expected write error for %+v", i, jobs)
		}
	}
}

// TestMMPPTrace sanity-checks the bursty generator: jobs arrive in
// order with positive sizes and a mean rate in the right regime.
func TestMMPPTrace(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 14))
	jobs := MMPPTrace(rng, 3000, 10, 0.5, 1, 0.2, 1)
	if len(jobs) != 3000 {
		t.Fatalf("generated %d jobs, want 3000", len(jobs))
	}
	prev := 0.0
	for i, j := range jobs {
		if j.Arrival < prev || j.Size <= 0 {
			t.Fatalf("job %d out of order or non-positive: %+v", i, j)
		}
		prev = j.Arrival
	}
	// Stationary mean rate: pi1*10 + pi2*0.5 with pi1 = 0.2/1.2.
	wantRate := (0.2*10 + 1*0.5) / 1.2
	gotRate := float64(len(jobs)) / jobs[len(jobs)-1].Arrival
	if gotRate < wantRate*0.7 || gotRate > wantRate*1.3 {
		t.Fatalf("mean rate %g too far from stationary %g", gotRate, wantRate)
	}
	// A written MMPP trace replays through the v1 format too.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTrace(&buf); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseTrace asserts the parser never panics and that anything it
// accepts survives a write→parse round trip unchanged.
func FuzzParseTrace(f *testing.F) {
	f.Add(`{"schema":"pepatags/sim-trace/v1","jobs":2}` + "\n" +
		`{"id":1,"at":0,"size":2.5}` + "\n" + `{"id":2,"at":0.25,"size":0.5}` + "\n")
	f.Add(`{"schema":"pepatags/sim-trace/v1","jobs":0}` + "\n")
	f.Add("")
	f.Add("garbage\n")
	f.Add(`{"schema":"pepatags/sim-trace/v1","jobs":1}` + "\n" + `{"id":1,"at":1e308,"size":1e-300}` + "\n")
	f.Add(`{"schema":"pepatags/sim-trace/v1","jobs":1}` + "\n" + `{"id":1,"at":-0,"size":1}` + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr.Jobs); err != nil {
			t.Fatalf("accepted trace fails to write: %v", err)
		}
		tr2, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("written trace fails to re-parse: %v", err)
		}
		if len(tr.Jobs) != len(tr2.Jobs) {
			t.Fatalf("round trip changed job count: %d -> %d", len(tr.Jobs), len(tr2.Jobs))
		}
		for i := range tr.Jobs {
			if tr.Jobs[i] != tr2.Jobs[i] {
				t.Fatalf("round trip changed job %d: %+v -> %+v", i, tr.Jobs[i], tr2.Jobs[i])
			}
		}
	})
}
