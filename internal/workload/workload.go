package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"strconv"

	"pepatags/internal/dist"
)

// ArrivalProcess produces successive interarrival times.
type ArrivalProcess interface {
	// NextInterarrival draws the time until the next arrival.
	NextInterarrival(rng *rand.Rand) float64
	// MeanRate returns the long-run arrival rate.
	MeanRate() float64
	String() string
}

// Poisson is a Poisson arrival process with the given rate.
type Poisson struct {
	Rate float64
}

// NewPoisson validates and returns the process.
func NewPoisson(rate float64) Poisson {
	if rate <= 0 {
		panic("workload: Poisson rate must be positive")
	}
	return Poisson{Rate: rate}
}

func (p Poisson) NextInterarrival(rng *rand.Rand) float64 { return rng.ExpFloat64() / p.Rate }
func (p Poisson) MeanRate() float64                       { return p.Rate }
func (p Poisson) String() string                          { return fmt.Sprintf("Poisson(%g)", p.Rate) }

// MMPP2 is a two-phase Markov-modulated Poisson process: arrivals at
// Rate1 while in phase 1 and Rate2 in phase 2; the phase flips at
// Switch1 (1->2) and Switch2 (2->1). With Rate1 >> Rate2 it produces
// the bursty traffic the paper's Section 7 conjectures hurts TAG.
type MMPP2 struct {
	Rate1, Rate2     float64
	Switch1, Switch2 float64

	phase2 bool // current modulating phase
}

// NewMMPP2 validates and returns the process.
func NewMMPP2(rate1, rate2, switch1, switch2 float64) *MMPP2 {
	if rate1 <= 0 || rate2 < 0 || switch1 <= 0 || switch2 <= 0 {
		panic("workload: invalid MMPP2 parameters")
	}
	return &MMPP2{Rate1: rate1, Rate2: rate2, Switch1: switch1, Switch2: switch2}
}

// MeanRate is the stationary-phase-weighted arrival rate.
func (m *MMPP2) MeanRate() float64 {
	// Stationary phase probabilities: pi1 = s2/(s1+s2).
	p1 := m.Switch2 / (m.Switch1 + m.Switch2)
	return p1*m.Rate1 + (1-p1)*m.Rate2
}

// NextInterarrival simulates the modulated process until the next
// arrival, flipping phases as needed.
func (m *MMPP2) NextInterarrival(rng *rand.Rand) float64 {
	var elapsed float64
	for {
		rate, sw := m.Rate1, m.Switch1
		if m.phase2 {
			rate, sw = m.Rate2, m.Switch2
		}
		tSwitch := rng.ExpFloat64() / sw
		if rate > 0 {
			tArr := rng.ExpFloat64() / rate
			if tArr < tSwitch {
				return elapsed + tArr
			}
		}
		elapsed += tSwitch
		m.phase2 = !m.phase2
	}
}

func (m *MMPP2) String() string {
	return fmt.Sprintf("MMPP2(rates %g/%g, switch %g/%g)", m.Rate1, m.Rate2, m.Switch1, m.Switch2)
}

// InBurst reports whether the process is currently in phase 1 (the
// high-rate phase). After NextInterarrival returns, this is the phase
// in which that arrival occurred.
func (m *MMPP2) InBurst() bool { return !m.phase2 }

// Job is one unit of work offered to the system.
type Job struct {
	ID      int
	Arrival float64 // absolute arrival time
	Size    float64 // service demand (time units at unit speed)
}

// Source generates a stream of jobs.
type Source interface {
	// Next returns the next job, or false when the stream ends.
	Next(rng *rand.Rand) (Job, bool)
}

// StochasticSource pairs an arrival process with a size distribution
// and produces up to Limit jobs (0 = unlimited).
type StochasticSource struct {
	Arrivals ArrivalProcess
	Sizes    dist.Distribution
	Limit    int

	clock float64
	count int
}

// Next draws the next job.
func (s *StochasticSource) Next(rng *rand.Rand) (Job, bool) {
	if s.Limit > 0 && s.count >= s.Limit {
		return Job{}, false
	}
	s.clock += s.Arrivals.NextInterarrival(rng)
	s.count++
	return Job{ID: s.count, Arrival: s.clock, Size: s.Sizes.Sample(rng)}, true
}

// ModulatedSource couples job sizes to the arrival phase of an MMPP-2:
// burst-phase arrivals draw from BurstSizes and quiet-phase arrivals
// from BaseSizes. This realises the paper's Section 7 scenario of
// "bursts consisting solely of short jobs", which cannot be expressed
// with independent sizes.
type ModulatedSource struct {
	Arrivals   *MMPP2
	BurstSizes dist.Distribution
	BaseSizes  dist.Distribution
	Limit      int

	clock float64
	count int
}

// Next draws the next job with a phase-dependent size.
func (s *ModulatedSource) Next(rng *rand.Rand) (Job, bool) {
	if s.Limit > 0 && s.count >= s.Limit {
		return Job{}, false
	}
	s.clock += s.Arrivals.NextInterarrival(rng)
	s.count++
	sizes := s.BaseSizes
	if s.Arrivals.InBurst() {
		sizes = s.BurstSizes
	}
	return Job{ID: s.count, Arrival: s.clock, Size: sizes.Sample(rng)}, true
}

// Trace is a deterministic job stream, used for the paper's worked
// example in Section 1.
type Trace struct {
	Jobs []Job
	next int
}

// NewTrace builds a trace from (arrival, size) pairs, assigning IDs in
// order.
func NewTrace(arrivals, sizes []float64) *Trace {
	if len(arrivals) != len(sizes) {
		panic("workload: trace lengths differ")
	}
	t := &Trace{}
	for i := range arrivals {
		t.Jobs = append(t.Jobs, Job{ID: i + 1, Arrival: arrivals[i], Size: sizes[i]})
	}
	return t
}

// Next returns the next traced job.
func (t *Trace) Next(*rand.Rand) (Job, bool) {
	if t.next >= len(t.Jobs) {
		return Job{}, false
	}
	j := t.Jobs[t.next]
	t.next++
	return j, true
}

// Reset rewinds the trace for reuse.
func (t *Trace) Reset() { t.next = 0 }

// LoadTraceCSV reads a deterministic job trace from CSV lines of
// "arrival,size" (header lines and blanks are skipped; arrivals must
// be non-decreasing and sizes positive).
func LoadTraceCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	cr.TrimLeadingSpace = true
	var arrivals, sizes []float64
	line := 0
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line+1, err)
		}
		line++
		a, err1 := strconv.ParseFloat(rec[0], 64)
		s, err2 := strconv.ParseFloat(rec[1], 64)
		if err1 != nil || err2 != nil {
			if line == 1 {
				continue // tolerate a header row
			}
			return nil, fmt.Errorf("workload: trace line %d: bad numbers %q, %q", line, rec[0], rec[1])
		}
		if s <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: non-positive size %g", line, s)
		}
		if len(arrivals) > 0 && a < arrivals[len(arrivals)-1] {
			return nil, fmt.Errorf("workload: trace line %d: arrivals must be non-decreasing", line)
		}
		arrivals = append(arrivals, a)
		sizes = append(sizes, s)
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return NewTrace(arrivals, sizes), nil
}
