// Package workload generates the simulator's job streams: arrival
// processes (Poisson; MMPP2, the two-phase Markov-modulated process
// used for the Section 7 burstiness experiments) combined with job
// size distributions (internal/dist) into a Source of timestamped
// Jobs.
//
// StochasticSource pairs one arrival process with one size
// distribution. ModulatedSource ties sizes to the arrival phase —
// the paper's "bursts consisting solely of short jobs" scenario,
// where high-rate-phase arrivals draw from a short-job distribution
// and quiet-phase arrivals carry the long jobs. Trace replays a
// fixed (or CSV-loaded) arrival/size sequence, so real logs and
// hand-built adversarial sequences run through the same simulator
// path as the stochastic models.
//
// Traces interchange as pepatags/sim-trace/v1, a JSON-lines format
// (one header line, one job object per line) written by WriteTrace
// and read by ParseTrace; both ends validate the same invariants
// (strictly increasing ids, non-decreasing finite arrivals, positive
// finite sizes), so a written trace always parses back identically.
// GenerateTrace materialises any Source into a replayable job slice,
// with BoundedParetoTrace (heavy-tailed Poisson) and MMPPTrace
// (bursty) as canned generators; `tagssim -gen-trace` exposes them
// on the command line. See docs/SIMULATION.md.
package workload
