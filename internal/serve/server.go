package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"pepatags/internal/obsv"
	"pepatags/internal/serve/admission"
	"pepatags/internal/sweep"
)

// Metric names registered by the daemon (docs/LINT.md#metric-naming).
const (
	metricJobsSubmitted = "serve.jobs_submitted"
	metricJobsRejected  = "serve.jobs_rejected"
	metricJobsDone      = "serve.jobs_done"
	metricJobsFailed    = "serve.jobs_failed"
	metricJobsCanceled  = "serve.jobs_canceled"
	metricBacklog       = "serve.backlog_seconds"
	metricJobSeconds    = "serve.job_seconds"
)

// Config configures a Server. The zero value is usable: one job at a
// time, solve pool sized to the machine, no admission bound (admit
// everything), no manifests.
type Config struct {
	// JobWorkers is the number of jobs run concurrently (default 1 —
	// jobs are themselves parallel, so one at a time is the right
	// default on a small machine).
	JobWorkers int
	// SolveWorkers is the per-job sweep pool size (default NumCPU).
	// A submission may lower it per job, never raise it.
	SolveWorkers int
	// QueueDepth bounds the admitted-but-not-started queue (default
	// 64). Admission control should trip long before this does; the
	// channel bound is the backstop.
	QueueDepth int

	// AdmissionBound is the work threshold in estimated seconds:
	// submissions are rejected while the estimated backlog is at or
	// above it. Zero or negative disables admission control.
	AdmissionBound float64
	// SeedPointSeconds / SeedShapeSeconds seed the cost estimator
	// (defaults from measured DeriveStats history; see
	// admission.DefaultSeedPointSeconds).
	SeedPointSeconds float64
	SeedShapeSeconds float64

	// ManifestDir, when set, receives one run manifest per finished
	// job (<job-id>.json, schema pepatags/run-manifest/v1), including
	// failure manifests for canceled and killed jobs.
	ManifestDir string

	// Log receives server-level events (serve.listen, job.start,
	// serve.reject, ...). A fresh log is created when nil.
	Log *obsv.EventLog
	// Registry receives server and engine metrics, served on /metrics.
	// A fresh registry is created when nil.
	Registry *obsv.Registry
}

// Server is the pepad daemon core: a bounded job pool over the sweep
// engine with a shared state-space cache, per-job event streams and
// admission control. It is transport-agnostic apart from Handler;
// cmd/pepad wires it to a net/http listener.
type Server struct {
	cfg   Config
	cache *sweep.Cache
	ctrl  *admission.Controller
	reg   *obsv.Registry
	log   *obsv.EventLog
	mux   *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	queue    chan *Job
	draining bool
	nextID   int

	wg sync.WaitGroup

	mSubmitted, mRejected, mDone, mFailed, mCanceled *obsv.Counter
	gBacklog                                         *obsv.Gauge
	hJobSec                                          *obsv.Histogram
}

// New builds a server and starts its job workers. Callers must
// eventually Shutdown it.
func New(cfg Config) *Server {
	if cfg.JobWorkers < 1 {
		cfg.JobWorkers = 1
	}
	if cfg.SolveWorkers < 1 {
		cfg.SolveWorkers = runtime.NumCPU()
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.Log == nil {
		cfg.Log = obsv.NewEventLog(obsv.EventLogConfig{})
	}
	if cfg.Registry == nil {
		cfg.Registry = obsv.NewRegistry()
	}
	var pol admission.Policy = admission.AlwaysAdmit{}
	if cfg.AdmissionBound > 0 {
		pol = admission.Threshold{Bound: cfg.AdmissionBound}
	}
	est := admission.NewEstimator(cfg.SeedPointSeconds, cfg.SeedShapeSeconds)
	s := &Server{
		cfg:        cfg,
		cache:      sweep.NewCache(),
		ctrl:       admission.NewController(pol, est, cfg.JobWorkers*cfg.SolveWorkers),
		reg:        cfg.Registry,
		log:        cfg.Log,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
		mSubmitted: cfg.Registry.Counter(metricJobsSubmitted),
		mRejected:  cfg.Registry.Counter(metricJobsRejected),
		mDone:      cfg.Registry.Counter(metricJobsDone),
		mFailed:    cfg.Registry.Counter(metricJobsFailed),
		mCanceled:  cfg.Registry.Counter(metricJobsCanceled),
		gBacklog:   cfg.Registry.Gauge(metricBacklog),
		hJobSec:    cfg.Registry.Histogram(metricJobSeconds),
	}
	s.mux = s.routes()
	for i := 0; i < cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Admission exposes the admission controller (stats endpoint, tests).
func (s *Server) Admission() *admission.Controller { return s.ctrl }

// Log exposes the server-level event log.
func (s *Server) Log() *obsv.EventLog { return s.log }

// SubmitError is a rejected submission, carrying the HTTP status and
// Retry-After the transport layer should relay.
type SubmitError struct {
	Status     int // 429 (admission/queue) or 503 (draining)
	RetryAfter time.Duration
	Reason     string
	Decision   *admission.Decision // nil for drain rejections
}

func (e *SubmitError) Error() string { return e.Reason }

// Submit validates and admits a spec. workers <= 0 takes the server
// default; values above the server's solve pool are clamped down.
func (s *Server) Submit(spec *sweep.Spec, workers int) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	points, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	if workers <= 0 || workers > s.cfg.SolveWorkers {
		workers = s.cfg.SolveWorkers
	}
	fresh := sweep.FreshShapes(points, s.cache)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		retry := s.drainRetryAfter()
		s.log.Warnf("serve.reject", "draining: rejected spec %s (%d points)", spec.Name, len(points))
		s.mRejected.Inc()
		return nil, &SubmitError{Status: http.StatusServiceUnavailable, RetryAfter: retry,
			Reason: "server is draining"}
	}
	handle, d := s.ctrl.Submit(len(points), fresh)
	if !d.Admit {
		s.mu.Unlock()
		s.mRejected.Inc()
		s.gBacklog.Set(d.BacklogSeconds)
		s.log.Emit(obsv.LevelWarn, "serve.reject", "admission: backlog over bound",
			map[string]float64{"backlog_sec": d.BacklogSeconds, "cost_sec": d.CostSeconds})
		return nil, &SubmitError{Status: http.StatusTooManyRequests, RetryAfter: d.RetryAfter,
			Reason: "admission control: estimated backlog over bound", Decision: &d}
	}
	s.nextID++
	job := &Job{
		ID:       fmt.Sprintf("job-%04d", s.nextID),
		Spec:     spec,
		SpecHash: hash,
		Points:   len(points),
		Fresh:    fresh,
		Workers:  workers,
		Handle:   handle,
		Cost:     d.CostSeconds,
		Log:      obsv.NewEventLog(obsv.EventLogConfig{}),
		cancel:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	job.submitted = time.Now()
	job.state = StateQueued

	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		s.ctrl.Abort(handle)
		s.mRejected.Inc()
		s.log.Warnf("serve.reject", "queue full: rejected spec %s", spec.Name)
		return nil, &SubmitError{Status: http.StatusTooManyRequests, RetryAfter: time.Second,
			Reason: "job queue full", Decision: &d}
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()

	s.mSubmitted.Inc()
	s.gBacklog.Set(s.ctrl.Backlog())
	job.Log.Emit(obsv.LevelInfo, "job.submit", "admitted "+spec.Name,
		map[string]float64{"points": float64(len(points)), "fresh_shapes": float64(fresh),
			"cost_estimate_sec": d.CostSeconds, "backlog_sec": d.BacklogSeconds})
	s.log.Infof("job.submit", "%s: %s (%d points, %d fresh shapes, est %.3fs)",
		job.ID, spec.Name, len(points), fresh, d.CostSeconds)
	return job, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// drainRetryAfter suggests when a drained-away client might find a
// server again: the time to clear the current backlog, at least a
// second. (A restarting daemon with a warm cache will beat this.)
func (s *Server) drainRetryAfter() time.Duration {
	sec := s.ctrl.Backlog() / float64(s.cfg.JobWorkers*s.cfg.SolveWorkers)
	if sec < 1 {
		sec = 1
	}
	return time.Duration(sec * float64(time.Second)).Round(time.Second)
}

// worker drains the job queue. Workers exit when the queue is closed
// (Shutdown) and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one job through the sweep engine and retires it:
// final state, admission bookkeeping, metrics, and a manifest.
func (s *Server) runJob(job *Job) {
	start := time.Now()
	job.setRunning(start)
	s.log.Infof("job.start", "%s: %s (%d points, workers=%d)", job.ID, job.Spec.Name, job.Points, job.Workers)

	res, err := sweep.Run(job.Spec, sweep.Options{
		Workers:  job.Workers,
		Cache:    s.cache,
		Cancel:   job.cancel,
		Registry: s.reg,
		Events:   job.Log,
	})
	elapsed := time.Since(start)

	state := StateDone
	switch {
	case err == nil:
		s.ctrl.Finish(job.Handle, job.Points, job.Fresh, res.Elapsed)
		s.mDone.Inc()
		s.hJobSec.Observe(elapsed.Seconds())
	case errors.Is(err, sweep.ErrCanceled):
		state = StateCanceled
		s.ctrl.Abort(job.Handle)
		s.mCanceled.Inc()
	default:
		state = StateFailed
		s.ctrl.Abort(job.Handle)
		s.mFailed.Inc()
	}
	s.gBacklog.Set(s.ctrl.Backlog())

	manifest := s.writeManifest(job, res, err)
	job.setFinal(state, res, err, time.Now(), manifest)
	job.Log.Close()

	if err != nil {
		s.log.Errorf("job."+state, "%s: %v", job.ID, err)
	} else {
		s.log.Infof("job.done", "%s: %d rows in %v (cache %d hits / %d misses)",
			job.ID, len(res.Rows), elapsed.Round(time.Millisecond), res.CacheHits, res.CacheMisses)
	}
}

// writeManifest records the job under ManifestDir, mirroring the
// tagseval -sweep manifest so tools/manifestcheck validates both the
// same way. Returns the path, or "" when manifests are off or the
// write failed (logged, never fatal: the job result stands on its
// own).
func (s *Server) writeManifest(job *Job, res *sweep.RunResult, runErr error) string {
	if s.cfg.ManifestDir == "" {
		return ""
	}
	m := obsv.NewManifest("pepad")
	m.Params = map[string]any{"job": job.ID, "spec": job.Spec.Name}
	m.Workers = job.Workers
	if runErr != nil {
		m.Error = runErr.Error()
	}
	if res != nil {
		m.Sweep = &obsv.SweepRecord{
			Name:        job.Spec.Name,
			SpecSHA256:  res.SpecHash,
			Points:      len(res.Points),
			Resumed:     res.Resumed,
			Workers:     job.Workers,
			CacheHits:   res.CacheHits,
			CacheMisses: res.CacheMisses,
			ElapsedSec:  res.Elapsed.Seconds(),
		}
	}
	m.Metrics = s.reg.Snapshot()
	m.Events = job.Log.Record("")
	path := filepath.Join(s.cfg.ManifestDir, job.ID+".json")
	if err := m.WriteFile(path); err != nil {
		s.log.Errorf("job.manifest", "%s: writing manifest: %v", job.ID, err)
		return ""
	}
	return path
}

// Shutdown drains the daemon: no new submissions, queued and running
// jobs finish, then workers exit. If ctx expires first, every
// unfinished job is canceled (in-flight points complete, the rest are
// abandoned) and each leaves a failure manifest. Always returns after
// the pool has stopped; the error reports whether jobs were killed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("serve: already shut down")
	}
	s.draining = true
	close(s.queue)
	n := 0
	for _, j := range s.jobs {
		if st := j.State(); st == StateQueued || st == StateRunning {
			n++
		}
	}
	s.mu.Unlock()
	s.log.Infof("serve.drain", "draining: %d unfinished jobs", n)

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var killed bool
	select {
	case <-done:
	case <-ctx.Done():
		killed = true
		s.mu.Lock()
		for _, j := range s.jobs {
			j.Cancel()
		}
		s.mu.Unlock()
		s.log.Warnf("serve.kill", "drain deadline passed: canceling unfinished jobs")
		// The context is already expired on this path; the wait is for
		// the just-canceled workers to unwind, which is bounded.
		<-done //vet:allow ctxflow: ctx.Done already fired; waiting for canceled workers to exit
	}
	s.log.Infof("serve.stop", "pool stopped")
	s.log.Close()
	if killed {
		return fmt.Errorf("serve: drain deadline passed, unfinished jobs canceled")
	}
	return nil
}
