package serve

import (
	"sync"
	"time"

	"pepatags/internal/obsv"
	"pepatags/internal/sweep"
)

// Job states, in lifecycle order. A job moves queued -> running ->
// one of done/failed/canceled; cancellation requested while queued
// still passes through running (the worker picks it up, the engine
// aborts immediately) so every job takes exactly one path through the
// pool and leaves exactly one manifest.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one admitted sweep. The immutable identity fields are set at
// submission; the mutable lifecycle fields are guarded by mu.
type Job struct {
	// Immutable after submission.
	ID       string
	Spec     *sweep.Spec
	SpecHash string
	Points   int
	Fresh    int // fresh shapes at admission time (cache misses to come)
	Workers  int
	Handle   uint64  // admission-controller handle
	Cost     float64 // admission-time cost estimate, seconds

	// Log is the job-scoped event stream: the engine's sweep.start /
	// sweep.point / sweep.done events land here and are served over
	// /v1/jobs/{id}/events. Closed when the job reaches a final state.
	Log *obsv.EventLog

	cancelOnce sync.Once
	cancel     chan struct{}
	done       chan struct{} // closed on final state

	mu           sync.Mutex
	state        string
	err          error
	res          *sweep.RunResult
	submitted    time.Time
	started      time.Time
	finished     time.Time
	manifestPath string
}

// Cancel requests cancellation; safe to call any number of times and
// in any state (a no-op once the job is final).
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// Done returns a channel closed when the job reaches a final state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the run result, or nil while the job has not
// completed successfully.
func (j *Job) Result() *sweep.RunResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.res
}

func (j *Job) setRunning(at time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = at
	j.mu.Unlock()
}

func (j *Job) setFinal(state string, res *sweep.RunResult, err error, at time.Time, manifest string) {
	j.mu.Lock()
	j.state = state
	j.res = res
	j.err = err
	j.finished = at
	j.manifestPath = manifest
	j.mu.Unlock()
	close(j.done)
}

// View is the JSON representation of a job served by the API.
type View struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Spec     string `json:"spec"`
	SpecHash string `json:"spec_sha256"`
	Points   int    `json:"points"`
	// FreshShapes is the number of distinct state-space shapes the job
	// was going to derive when admitted (its cache misses).
	FreshShapes int     `json:"fresh_shapes"`
	Workers     int     `json:"workers"`
	CostSeconds float64 `json:"cost_estimate_sec"`

	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`

	Error    string      `json:"error,omitempty"`
	Manifest string      `json:"manifest,omitempty"`
	Result   *ResultInfo `json:"result,omitempty"`
}

// ResultInfo is the run accounting of a completed job.
type ResultInfo struct {
	Rows        int     `json:"rows"`
	Resumed     int     `json:"resumed,omitempty"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	ElapsedSec  float64 `json:"elapsed_sec"`
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// View snapshots the job for the API.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:          j.ID,
		State:       j.state,
		Spec:        j.Spec.Name,
		SpecHash:    j.SpecHash,
		Points:      j.Points,
		FreshShapes: j.Fresh,
		Workers:     j.Workers,
		CostSeconds: j.Cost,
		SubmittedAt: rfc3339(j.submitted),
		StartedAt:   rfc3339(j.started),
		FinishedAt:  rfc3339(j.finished),
		Manifest:    j.manifestPath,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.state == StateDone && j.res != nil {
		v.Result = &ResultInfo{
			Rows:        len(j.res.Rows),
			Resumed:     j.res.Resumed,
			CacheHits:   j.res.CacheHits,
			CacheMisses: j.res.CacheMisses,
			ElapsedSec:  j.res.Elapsed.Seconds(),
		}
	}
	return v
}
