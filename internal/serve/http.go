package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"pepatags/internal/exp"
	"pepatags/internal/obsv"
	"pepatags/internal/sweep"
)

// SubmitRequest is the POST /v1/jobs body: a sweep spec
// (pepatags/sweep-spec/v1, the same document tagseval -sweep reads)
// plus an optional per-job worker override.
type SubmitRequest struct {
	Spec    *sweep.Spec `json:"spec"`
	Workers int         `json:"workers,omitempty"`
}

// SubmitResponse is the 202 body for an admitted job.
type SubmitResponse struct {
	Job View `json:"job"`
	// BacklogSeconds / CostSeconds echo the admission decision.
	BacklogSeconds float64 `json:"backlog_seconds"`
	CostSeconds    float64 `json:"cost_seconds"`
}

// errorBody is the JSON error envelope every non-2xx response uses.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
	BacklogSeconds    float64 `json:"backlog_seconds,omitempty"`
	CostSeconds       float64 `json:"cost_seconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint: the status line is already out; nothing to do on error
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// Handler returns the daemon's HTTP API (see docs/PEPAD.md).
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/admission", s.handleAdmission)
	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, r *http.Request) {
		obsv.ServeEvents(w, r, s.log)
	})
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		s.reg.WriteOpenMetrics(w)
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if req.Spec == nil {
		writeError(w, http.StatusBadRequest, `request needs a "spec" (pepatags/sweep-spec/v1)`)
		return
	}
	job, err := s.Submit(req.Spec, req.Workers)
	if err != nil {
		var se *SubmitError
		if errors.As(err, &se) {
			w.Header().Set("Retry-After", strconv.Itoa(int(se.RetryAfter.Seconds())))
			body := errorBody{Error: se.Reason, RetryAfterSeconds: se.RetryAfter.Seconds()}
			if se.Decision != nil {
				body.BacklogSeconds = se.Decision.BacklogSeconds
				body.CostSeconds = se.Decision.CostSeconds
			}
			writeJSON(w, se.Status, body)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		Job:            job.View(),
		BacklogSeconds: s.ctrl.Backlog(),
		CostSeconds:    job.Cost,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]View, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	state := "serving"
	if s.Draining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"state": state, "jobs": views})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
		return nil
	}
	return job
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job := s.lookupJob(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.View())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookupJob(w, r)
	if job == nil {
		return
	}
	switch job.State() {
	case StateDone, StateFailed, StateCanceled:
		writeError(w, http.StatusConflict, "job already "+job.State())
		return
	}
	job.Cancel()
	s.log.Infof("job.cancel", "%s: cancellation requested", job.ID)
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if job := s.lookupJob(w, r); job != nil {
		obsv.ServeEvents(w, r, job.Log)
	}
}

// handleResult serves a completed job's rows. ?format= selects the
// representation:
//
//   - rows (default): JSON {"rows": [...]} — the journal rows.
//   - table: the figure rendered as aligned text, byte-identical to
//     `tagseval -sweep` stdout for the same spec.
//   - csv: the figure in CSV, byte-identical to `tagseval -sweep -csv`.
//
// table/csv need the spec to carry a figure section.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job := s.lookupJob(w, r)
	if job == nil {
		return
	}
	switch job.State() {
	case StateDone:
	case StateQueued, StateRunning:
		writeError(w, http.StatusConflict, "job is "+job.State()+"; poll /v1/jobs/"+job.ID+" or stream /v1/jobs/"+job.ID+"/events")
		return
	default:
		writeError(w, http.StatusConflict, "job "+job.State()+" produced no result")
		return
	}
	res := job.Result()

	format := r.URL.Query().Get("format")
	if format == "" {
		format = "rows"
	}
	if format == "table" || format == "csv" {
		if job.Spec.Figure == nil {
			writeError(w, http.StatusBadRequest, "spec has no figure section; use format=rows")
			return
		}
		tbl, err := sweep.Assemble(job.Spec, res)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "assembling table: "+err.Error())
			return
		}
		f := exp.FigureFromTable(tbl)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if format == "csv" {
			f.CSV(w)
		} else {
			f.Render(w)
		}
		return
	}
	if format != "rows" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (rows, table, csv)", format))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":         job.ID,
		"spec_sha256": job.SpecHash,
		"rows":        res.Rows,
	})
}

func (s *Server) handleAdmission(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ctrl.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := "serving"
	code := http.StatusOK
	if s.Draining() {
		state = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": "ok", "state": state})
}
