package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pepatags/internal/exp"
	"pepatags/internal/obsv"
	"pepatags/internal/sweep"
)

// tagSpec builds a small TAG sweep: one tagexp series with capacity k
// per queue, swept over the given timeout phase rates. All points
// share one model shape, so the spec has exactly one fresh shape on a
// cold cache.
func tagSpec(name string, k int, ts []float64) *sweep.Spec {
	return &sweep.Spec{
		Schema: sweep.SpecSchema,
		Name:   name,
		Groups: []sweep.Group{{
			Point: sweep.Point{
				Series: "tag", Model: "tagexp",
				Lambda: 5, N: 2, K1: k, K2: k,
				Service: sweep.ServiceSpec{Kind: "exp", Mu: 10},
			},
			Axes: []sweep.Axis{{Field: "t", Values: ts}},
		}},
		Figure: &sweep.FigureSpec{
			ID:     name,
			Title:  "W vs t",
			XLabel: "t",
			YLabel: "W",
			Series: []sweep.SeriesSpec{{Name: "TAG", From: "tag", Measure: "W"}},
		},
	}
}

func postJob(t *testing.T, url string, req SubmitRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, r io.Reader) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func waitState(t *testing.T, url, id, want string) View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		v := decodeJSON[View](t, resp.Body)
		resp.Body.Close()
		if v.State == want {
			return v
		}
		if v.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return View{}
}

// TestAcceptanceEndToEnd is the issue's acceptance scenario against a
// real listening socket: submit a K=28 TAG sweep over HTTP, stream its
// sweep.point events via SSE, fetch the rendered table and compare it
// byte-for-byte with the tagseval -sweep pipeline (sweep.Run ->
// Assemble -> FigureFromTable -> Render) on a cold cache, then inject
// an overload and observe admission rejections with Retry-After.
func TestAcceptanceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{
		JobWorkers:     1,
		SolveWorkers:   2,
		AdmissionBound: 0.05, // seconds of estimated work: trips under a burst
		ManifestDir:    dir,
	})
	ts := httptest.NewServer(s.Handler()) // real TCP socket on 127.0.0.1
	defer ts.Close()
	defer s.Shutdown(context.Background())

	spec := tagSpec("accept-k28", 28, []float64{4, 8, 12, 16, 20, 24, 28, 32})

	// Submit.
	resp := postJob(t, ts.URL, SubmitRequest{Spec: spec})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	sub := decodeJSON[SubmitResponse](t, resp.Body)
	resp.Body.Close()
	if sub.Job.State != StateQueued && sub.Job.State != StateRunning {
		t.Fatalf("fresh job in state %q", sub.Job.State)
	}
	if sub.Job.Points != 8 || sub.Job.FreshShapes != 1 {
		t.Fatalf("job accounting: %d points, %d fresh shapes; want 8, 1", sub.Job.Points, sub.Job.FreshShapes)
	}
	id := sub.Job.ID

	// Stream the job's events via SSE from the beginning (?since=0).
	// The stream ends when the job log closes, i.e. when the job is
	// final.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events?since=0", nil)
	req.Header.Set("Accept", "text/event-stream")
	sseResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("SSE connect: %v", err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("SSE content type %q", ct)
	}
	points, done := 0, false
	scanner := bufio.NewScanner(sseResp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev obsv.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("SSE frame %q: %v", line, err)
		}
		switch ev.Kind {
		case "sweep.point":
			points++
		case "sweep.done":
			done = true
		case "sweep.error":
			t.Fatalf("sweep error event: %s", ev.Msg)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("SSE read: %v", err)
	}
	if !done {
		t.Fatal("SSE stream ended without a sweep.done event")
	}
	if points != 8 {
		t.Errorf("streamed %d sweep.point events, want 8", points)
	}

	v := waitState(t, ts.URL, id, StateDone)
	if v.Result == nil || v.Result.Rows != 8 {
		t.Fatalf("done view carries no result: %+v", v)
	}
	if v.Result.CacheMisses != 1 || v.Result.CacheHits != 7 {
		t.Errorf("cache accounting: %d misses / %d hits, want 1 / 7", v.Result.CacheMisses, v.Result.CacheHits)
	}

	// The rendered table must be byte-identical to the CLI pipeline on
	// a fresh cache.
	got, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result?format=table")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	gotBytes, _ := io.ReadAll(got.Body)
	got.Body.Close()
	res, err := sweep.Run(spec, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	tbl, err := sweep.Assemble(spec, res)
	if err != nil {
		t.Fatalf("reference assemble: %v", err)
	}
	var want bytes.Buffer
	if err := exp.FigureFromTable(tbl).Render(&want); err != nil {
		t.Fatalf("reference render: %v", err)
	}
	if !bytes.Equal(gotBytes, want.Bytes()) {
		t.Errorf("served table differs from the CLI pipeline:\n--- served ---\n%s--- reference ---\n%s", gotBytes, want.Bytes())
	}

	// CSV route, same contract.
	gotCSV, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result?format=csv")
	if err != nil {
		t.Fatalf("GET csv: %v", err)
	}
	csvBytes, _ := io.ReadAll(gotCSV.Body)
	gotCSV.Body.Close()
	var wantCSV bytes.Buffer
	exp.FigureFromTable(tbl).CSV(&wantCSV)
	if !bytes.Equal(csvBytes, wantCSV.Bytes()) {
		t.Errorf("served CSV differs from the CLI pipeline")
	}

	// Rows route carries every journal row.
	gotRows, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET rows: %v", err)
	}
	rows := decodeJSON[struct {
		Rows []sweep.Row `json:"rows"`
	}](t, gotRows.Body)
	gotRows.Body.Close()
	if len(rows.Rows) != 8 {
		t.Errorf("rows format returned %d rows, want 8", len(rows.Rows))
	}

	// The job manifest validates and records the sweep.
	m, err := obsv.ReadManifest(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatalf("reading job manifest: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("job manifest invalid: %v", err)
	}
	if m.Tool != "pepad" || m.Sweep == nil || m.Sweep.Points != 8 {
		t.Errorf("manifest records tool=%q sweep=%+v", m.Tool, m.Sweep)
	}

	// Injected overload: burst submissions until admission control
	// trips. Each admitted job adds estimated work to the backlog;
	// with a 0.05 s bound the backlog exceeds the threshold within a
	// few admissions, long before the single-worker pool drains it.
	var rejected *http.Response
	for i := 0; i < 200 && rejected == nil; i++ {
		r := postJob(t, ts.URL, SubmitRequest{Spec: spec})
		if r.StatusCode == http.StatusTooManyRequests {
			rejected = r
			break
		}
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d: status %d", i, r.StatusCode)
		}
	}
	if rejected == nil {
		t.Fatal("no admission rejection in a 200-submission burst over a 0.05s bound")
	}
	if ra := rejected.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 without a usable Retry-After header: %q", ra)
	}
	eb := decodeJSON[struct {
		Error             string  `json:"error"`
		RetryAfterSeconds float64 `json:"retry_after_seconds"`
		BacklogSeconds    float64 `json:"backlog_seconds"`
	}](t, rejected.Body)
	rejected.Body.Close()
	if eb.Error == "" || eb.RetryAfterSeconds < 1 || eb.BacklogSeconds < 0.05 {
		t.Errorf("rejection body %+v", eb)
	}

	// The admission endpoint accounts for it.
	ar, err := http.Get(ts.URL + "/v1/admission")
	if err != nil {
		t.Fatalf("GET admission: %v", err)
	}
	stats := decodeJSON[struct {
		Policy   string `json:"policy"`
		Rejected int64  `json:"rejected"`
	}](t, ar.Body)
	ar.Body.Close()
	if stats.Rejected < 1 || !strings.HasPrefix(stats.Policy, "threshold") {
		t.Errorf("admission stats %+v", stats)
	}
}

// TestShutdownDrains: a graceful shutdown finishes the in-flight job,
// and submissions during/after the drain get 503 with Retry-After.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{JobWorkers: 1, SolveWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts.URL, SubmitRequest{Spec: tagSpec("drain", 12, []float64{4, 8, 12})})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decodeJSON[SubmitResponse](t, resp.Body)
	resp.Body.Close()
	job, _ := s.Job(sub.Job.ID)

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := job.State(); st != StateDone {
		t.Fatalf("drained job in state %q, want done", st)
	}

	r := postJob(t, ts.URL, SubmitRequest{Spec: tagSpec("late", 4, []float64{4})})
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	defer h.Body.Close()
	if h.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: %d, want 503", h.StatusCode)
	}
}

// TestShutdownKillsAndWritesFailureManifest: when the drain deadline
// passes, unfinished jobs are canceled and each leaves a failure
// manifest that validates (error + flight-recorder events).
func TestShutdownKillsAndWritesFailureManifest(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{JobWorkers: 1, SolveWorkers: 1, ManifestDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A deliberately large sweep (hundreds of distinct K=28-class
	// solves) that cannot finish inside the drain deadline.
	var big []float64
	for i := 1; i <= 400; i++ {
		big = append(big, float64(i))
	}
	resp := postJob(t, ts.URL, SubmitRequest{Spec: tagSpec("kill", 28, big)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decodeJSON[SubmitResponse](t, resp.Body)
	resp.Body.Close()
	job, _ := s.Job(sub.Job.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown reported a clean drain despite the deadline")
	}
	if st := job.State(); st != StateCanceled {
		t.Fatalf("killed job in state %q, want canceled", st)
	}

	m, err := obsv.ReadManifest(filepath.Join(dir, job.ID+".json"))
	if err != nil {
		t.Fatalf("reading failure manifest: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("failure manifest invalid: %v", err)
	}
	if m.Error == "" {
		t.Error("failure manifest carries no error")
	}
	if m.Events == nil || len(m.Events.Recorder) == 0 {
		t.Error("failure manifest carries no flight-recorder events")
	}
	if m.Tool != "pepad" {
		t.Errorf("failure manifest tool %q", m.Tool)
	}
}

// TestCancelQueuedJob: DELETE cancels a queued job; it passes through
// the pool, lands in canceled, and serves 409 for its result.
func TestCancelQueuedJob(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{JobWorkers: 1, SolveWorkers: 1, ManifestDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	// Fill the single worker with a non-trivial job, then queue a
	// second and cancel it before it starts.
	first := postJob(t, ts.URL, SubmitRequest{Spec: tagSpec("front", 20, []float64{2, 4, 6, 8, 10, 12})})
	firstSub := decodeJSON[SubmitResponse](t, first.Body)
	first.Body.Close()
	second := postJob(t, ts.URL, SubmitRequest{Spec: tagSpec("victim", 20, []float64{3, 5, 7})})
	sub := decodeJSON[SubmitResponse](t, second.Body)
	second.Body.Close()

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.Job.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", dr.StatusCode)
	}

	v := waitState(t, ts.URL, sub.Job.ID, StateCanceled)
	if v.Error == "" {
		t.Error("canceled job records no error")
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Errorf("result of canceled job: status %d, want 409", rr.StatusCode)
	}
	// Canceling a finished job is a conflict.
	waitState(t, ts.URL, firstSub.Job.ID, StateDone)
	req2, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+firstSub.Job.ID, nil)
	dr2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("DELETE done job: %v", err)
	}
	dr2.Body.Close()
	if dr2.StatusCode != http.StatusConflict {
		t.Errorf("cancel of done job: status %d, want 409", dr2.StatusCode)
	}
}

// TestSharedCacheAcrossJobs: the second identical job hits the shared
// cache for every point (zero misses).
func TestSharedCacheAcrossJobs(t *testing.T) {
	s := New(Config{JobWorkers: 1, SolveWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	spec := tagSpec("warm", 10, []float64{4, 8, 12})
	a := postJob(t, ts.URL, SubmitRequest{Spec: spec})
	subA := decodeJSON[SubmitResponse](t, a.Body)
	a.Body.Close()
	waitState(t, ts.URL, subA.Job.ID, StateDone)

	b := postJob(t, ts.URL, SubmitRequest{Spec: spec})
	subB := decodeJSON[SubmitResponse](t, b.Body)
	b.Body.Close()
	if subB.Job.FreshShapes != 0 {
		t.Errorf("second job sees %d fresh shapes, want 0 (shared cache)", subB.Job.FreshShapes)
	}
	v := waitState(t, ts.URL, subB.Job.ID, StateDone)
	if v.Result.CacheMisses != 0 || v.Result.CacheHits != 3 {
		t.Errorf("second job cache deltas: %d misses / %d hits, want 0 / 3", v.Result.CacheMisses, v.Result.CacheHits)
	}
}

// TestHTTPValidation: malformed and missing inputs get 4xx, not jobs.
func TestHTTPValidation(t *testing.T) {
	s := New(Config{JobWorkers: 1, SolveWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"garbage body", "POST", "/v1/jobs", "{nope", http.StatusBadRequest},
		{"missing spec", "POST", "/v1/jobs", "{}", http.StatusBadRequest},
		{"unknown field", "POST", "/v1/jobs", `{"specc":{}}`, http.StatusBadRequest},
		{"bad spec", "POST", "/v1/jobs", `{"spec":{"schema":"pepatags/sweep-spec/v1","name":"x"}}`, http.StatusBadRequest},
		{"unknown job", "GET", "/v1/jobs/job-9999", "", http.StatusNotFound},
		{"unknown job events", "GET", "/v1/jobs/job-9999/events", "", http.StatusNotFound},
		{"unknown job result", "GET", "/v1/jobs/job-9999/result", "", http.StatusNotFound},
		{"wrong method", "PUT", "/v1/jobs", "{}", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if tc.body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Metrics and server-event endpoints respond.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mb), "# EOF") {
		t.Error("metrics endpoint is not OpenMetrics-terminated")
	}
	er, err := http.Get(ts.URL + "/v1/events?since=0&timeout=1ms&stream=poll")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	er.Body.Close()
	if er.StatusCode != http.StatusOK {
		t.Errorf("server events: status %d", er.StatusCode)
	}
}

// TestManifestCheckAcceptsJobManifests shells the written manifests
// through the same validation the manifestcheck CI gate applies.
func TestManifestDirValidates(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{JobWorkers: 1, SolveWorkers: 1, ManifestDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts.URL, SubmitRequest{Spec: tagSpec("mani", 6, []float64{4, 8})})
	sub := decodeJSON[SubmitResponse](t, resp.Body)
	resp.Body.Close()
	waitState(t, ts.URL, sub.Job.ID, StateDone)
	s.Shutdown(context.Background())

	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("manifest dir: %v entries, err %v", len(ents), err)
	}
	m, err := obsv.ReadManifest(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if m.Sweep == nil || m.Sweep.SpecSHA256 == "" {
		t.Errorf("manifest sweep record %+v", m.Sweep)
	}
	if fmt.Sprint(m.Params["job"]) != sub.Job.ID {
		t.Errorf("manifest params %v", m.Params)
	}
}
