package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"pepatags/internal/obsv"
	"pepatags/internal/serve"
	"pepatags/internal/sweep"
)

// Example submits a two-point TAG sweep to a pepad server over real
// HTTP, waits for it, fetches the result accounting, and then reads
// the job's event stream through the long-poll endpoint.
func Example() {
	srv := serve.New(serve.Config{JobWorkers: 1, SolveWorkers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	spec := &sweep.Spec{
		Schema: sweep.SpecSchema,
		Name:   "example",
		Groups: []sweep.Group{{
			Point: sweep.Point{
				Series: "tag", Model: "tagexp",
				Lambda: 5, N: 2, K1: 3, K2: 3,
				Service: sweep.ServiceSpec{Kind: "exp", Mu: 10},
			},
			Axes: []sweep.Axis{{Field: "t", Values: []float64{2, 6}}},
		}},
	}
	body, _ := json.Marshal(serve.SubmitRequest{Spec: spec})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println("submit:", err)
		return
	}
	var sub serve.SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()

	// Wait for the job (over HTTP a client would poll /v1/jobs/{id}
	// or stream /v1/jobs/{id}/events; in-process the Job handle has a
	// Done channel).
	job, _ := srv.Job(sub.Job.ID)
	<-job.Done()
	view := job.View()
	fmt.Printf("%s: %d rows\n", view.State, view.Result.Rows)

	// The job's whole event history replays from the flight recorder;
	// the closed log answers a long-poll immediately.
	er, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job.ID + "/events?since=0&timeout=5s")
	if err != nil {
		fmt.Println("events:", err)
		return
	}
	var events []obsv.Event
	json.NewDecoder(er.Body).Decode(&events)
	er.Body.Close()
	for _, ev := range events {
		if strings.HasPrefix(ev.Kind, "sweep.") {
			fmt.Println(ev.Kind)
		}
	}
	// Output:
	// done: 2 rows
	// sweep.start
	// sweep.point
	// sweep.point
	// sweep.done
}
