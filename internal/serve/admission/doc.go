// Package admission implements pepad's overload policy: the
// threshold admission control of Mazzucco & Mitrani ("Allocation and
// Admission Policies for Service Streams") applied to jobs whose
// service duration is unknown — the source paper's question, made
// literal in the serving layer.
//
// An Estimator predicts each job's cost in seconds from what is
// observable at submission time: how many points the sweep expands to
// and how many distinct state-space shapes the shared cache has not
// derived yet (sweep.FreshShapes). Two EWMAs — seconds per cached
// point and seconds per fresh derivation — are seeded from measured
// DeriveStats history and recalibrated from every completed job, so
// the estimates track the hardware without ever knowing a job's true
// duration in advance.
//
// A Controller serializes decisions: Submit consults the Policy with
// the current estimated backlog, and admitted jobs stay in the
// backlog until Finish (success, feeds the estimator) or Abort
// (failure/cancel, does not). The Threshold policy rejects while the
// backlog is at or above a configured bound of estimated seconds —
// the work-conserving analogue of "admit while fewer than K jobs are
// present", which makes policies.AdmissionQueue (an M/M/c/K loss
// system with Queue = Bound/E[job] - Servers places) its analyzable
// counterpart. The package tests drive a Poisson arrival stream
// through the Controller and check the observed reject rate against
// that model's blocking probability; the conform oracle battery
// cross-checks the model itself against an explicitly built CTMC.
package admission
