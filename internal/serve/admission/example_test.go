package admission_test

import (
	"fmt"

	"pepatags/internal/serve/admission"
)

// ExampleController walks the threshold policy through a burst: each
// admitted two-point job adds two estimated seconds to the backlog,
// and the bound of three seconds trips on the third submission.
func ExampleController() {
	est := admission.NewEstimator(1, 1) // 1 s per point, 1 s per fresh shape
	ctrl := admission.NewController(admission.Threshold{Bound: 3}, est, 1)
	for i := 0; i < 4; i++ {
		_, d := ctrl.Submit(2, 0)
		fmt.Printf("job %d: admit=%v backlog=%.0fs\n", i, d.Admit, d.BacklogSeconds)
	}
	// Output:
	// job 0: admit=true backlog=0s
	// job 1: admit=true backlog=2s
	// job 2: admit=false backlog=4s
	// job 3: admit=false backlog=4s
}

// ExampleThreshold maps the work bound onto the analyzable model's
// queue places: a 30-second bound holds six jobs of five-second mean,
// so the daemon behaves like an M/M/c/K queue with K = c + 6.
func ExampleThreshold() {
	pol := admission.Threshold{Bound: 30}
	fmt.Println(pol, "holds", pol.QueuePlaces(5), "mean jobs")
	// Output:
	// threshold(bound=30s) holds 6 mean jobs
}
