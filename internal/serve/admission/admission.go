package admission

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Default seeds for a fresh estimator, chosen from the measured
// figures in docs/PERFORMANCE.md: a cache-hit point on the paper's
// grids instantiates and solves in a few milliseconds, and a fresh
// K=28-class shape derivation costs tens of milliseconds. The seeds
// only matter until the first few observations arrive; the EWMAs then
// track the hardware.
const (
	DefaultSeedPointSeconds = 0.005
	DefaultSeedShapeSeconds = 0.05
	// ewmaAlpha is the decay of the cost averages: each observation
	// carries 20% weight, so the estimate tracks drift (bigger models,
	// warmer caches) within a handful of jobs without whiplashing on
	// one outlier.
	ewmaAlpha = 0.2
)

// ewma is a fixed-decay exponentially weighted moving average.
type ewma struct{ v float64 }

func (e *ewma) observe(x float64) {
	if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	e.v += ewmaAlpha * (x - e.v)
}

// Estimator predicts the cost of a job whose service duration is
// unknown — the literal version of the source paper's problem. A job
// is a sweep: Points model solves, of which FreshShapes need a
// state-space derivation (the rest hit the shared content-addressed
// cache). The estimator keeps one EWMA of the per-point solve cost
// and one of the per-shape derivation cost, seeded from measured
// defaults and updated from completed jobs (and, optionally, directly
// from DeriveStats timings via ObserveDerive).
type Estimator struct {
	mu    sync.Mutex
	point ewma // seconds per point, shape already cached
	shape ewma // seconds per fresh shape derivation
}

// NewEstimator returns an estimator seeded with the given per-point
// and per-shape costs; zero or negative seeds fall back to the
// measured defaults.
func NewEstimator(seedPointSeconds, seedShapeSeconds float64) *Estimator {
	if seedPointSeconds <= 0 {
		seedPointSeconds = DefaultSeedPointSeconds
	}
	if seedShapeSeconds <= 0 {
		seedShapeSeconds = DefaultSeedShapeSeconds
	}
	return &Estimator{point: ewma{seedPointSeconds}, shape: ewma{seedShapeSeconds}}
}

// EstimateJob predicts the wall seconds a job with the given point
// count and fresh-shape count will take on one worker.
func (e *Estimator) EstimateJob(points, freshShapes int) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return float64(points)*e.point.v + float64(freshShapes)*e.shape.v
}

// ObserveJob feeds a completed job back. The split between the two
// components is not identifiable from one job, so elapsed is
// attributed proportionally to the current estimates: both EWMAs are
// scaled by observed/predicted. Jobs with different point/shape mixes
// (cache-hot sweeps vs fresh models) then pull the two costs apart
// toward their true values, while a uniform workload just calibrates
// the total.
func (e *Estimator) ObserveJob(points, freshShapes int, elapsed time.Duration) {
	if points < 1 || elapsed <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	total := elapsed.Seconds()
	predicted := float64(points)*e.point.v + float64(freshShapes)*e.shape.v
	if predicted <= 0 {
		e.point.observe(total / float64(points))
		return
	}
	scale := total / predicted
	e.point.observe(e.point.v * scale)
	if freshShapes > 0 {
		e.shape.observe(e.shape.v * scale)
	}
}

// ObserveDerive feeds one measured state-space derivation (a
// DeriveStats.Elapsed) directly into the per-shape cost.
func (e *Estimator) ObserveDerive(elapsed time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.shape.observe(elapsed.Seconds())
}

// Costs returns the current per-point and per-shape estimates.
func (e *Estimator) Costs() (pointSeconds, shapeSeconds float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.point.v, e.shape.v
}

// Policy decides admission given the estimated backlog of admitted
// but unfinished work (seconds, all jobs) and the candidate job's own
// estimated cost (seconds).
type Policy interface {
	Admit(backlogSeconds, costSeconds float64) bool
	fmt.Stringer
}

// Threshold is the Mazzucco & Mitrani policy the daemon dogfoods: a
// job is admitted while the estimated backlog is below Bound seconds,
// and rejected otherwise — the work-conserving analogue of "admit
// while fewer than K jobs are present". The candidate's own estimated
// cost deliberately does not enter the decision: service durations
// are unknown, so admission is decided on the state of the queue, not
// on the job (exactly the information regime of the source paper).
// The analyzable counterpart is policies.AdmissionQueue with
// Queue = Bound / E[job seconds] places.
type Threshold struct {
	// Bound is the backlog ceiling in estimated seconds of work.
	Bound float64
}

// Admit implements Policy.
func (t Threshold) Admit(backlogSeconds, _ float64) bool { return backlogSeconds < t.Bound }

func (t Threshold) String() string { return fmt.Sprintf("threshold(bound=%gs)", t.Bound) }

// QueuePlaces maps the work bound onto the queue places of the
// analyzable model: how many jobs of the given mean size fit under
// the bound.
func (t Threshold) QueuePlaces(meanJobSeconds float64) int {
	if meanJobSeconds <= 0 {
		return 0
	}
	return int(t.Bound / meanJobSeconds)
}

// AlwaysAdmit accepts everything — the no-admission-control baseline.
type AlwaysAdmit struct{}

// Admit implements Policy.
func (AlwaysAdmit) Admit(float64, float64) bool { return true }

func (AlwaysAdmit) String() string { return "always-admit" }

// Decision is the outcome of one admission consultation.
type Decision struct {
	Admit bool `json:"admit"`
	// CostSeconds is the estimated cost of the candidate job.
	CostSeconds float64 `json:"cost_seconds"`
	// BacklogSeconds is the estimated outstanding work at decision
	// time, excluding the candidate.
	BacklogSeconds float64 `json:"backlog_seconds"`
	// RetryAfter is the suggested client back-off when rejected: the
	// time the current backlog needs to drain below the bound at the
	// configured worker capacity (at least one second).
	RetryAfter time.Duration `json:"-"`
}

// Stats is a snapshot of the controller for /v1/admission and tests.
type Stats struct {
	Policy              string  `json:"policy"`
	Workers             int     `json:"workers"`
	Admitted            int64   `json:"admitted"`
	Rejected            int64   `json:"rejected"`
	BacklogSeconds      float64 `json:"backlog_seconds"`
	PointCostSeconds    float64 `json:"point_cost_seconds"`
	ShapeCostSeconds    float64 `json:"shape_cost_seconds"`
	OutstandingJobs     int     `json:"outstanding_jobs"`
	ObservedJobs        int64   `json:"observed_jobs"`
	ObservedWorkSeconds float64 `json:"observed_work_seconds"`
}

// Controller serializes admission decisions and tracks the estimated
// backlog. All methods are safe for concurrent use.
type Controller struct {
	mu          sync.Mutex
	policy      Policy
	est         *Estimator
	workers     int
	outstanding map[uint64]float64 // handle -> estimated cost
	backlog     float64
	nextHandle  uint64
	admitted    int64
	rejected    int64
	observedN   int64
	observedSec float64
}

// NewController builds a controller over the given policy and
// estimator. workers is the solve-pool size, used to scale the
// Retry-After hint; nil est gets a default-seeded estimator, nil
// policy admits everything.
func NewController(policy Policy, est *Estimator, workers int) *Controller {
	if policy == nil {
		policy = AlwaysAdmit{}
	}
	if est == nil {
		est = NewEstimator(0, 0)
	}
	if workers < 1 {
		workers = 1
	}
	return &Controller{
		policy:      policy,
		est:         est,
		workers:     workers,
		outstanding: make(map[uint64]float64),
	}
}

// Estimator exposes the controller's estimator (for feeding
// DeriveStats observations in).
func (c *Controller) Estimator() *Estimator { return c.est }

// Submit consults the policy for a job with the given point and
// fresh-shape counts. When admitted, the job's estimated cost joins
// the backlog and the returned handle must later be passed to Finish
// (completed, with the measured elapsed time) or Abort (failed or
// canceled). A rejected submission returns handle 0.
func (c *Controller) Submit(points, freshShapes int) (handle uint64, d Decision) {
	cost := c.est.EstimateJob(points, freshShapes)
	c.mu.Lock()
	defer c.mu.Unlock()
	d = Decision{CostSeconds: cost, BacklogSeconds: c.backlog}
	if !c.policy.Admit(c.backlog, cost) {
		c.rejected++
		d.RetryAfter = c.retryAfterLocked(cost)
		return 0, d
	}
	c.admitted++
	d.Admit = true
	c.nextHandle++
	handle = c.nextHandle
	c.outstanding[handle] = cost
	c.backlog += cost
	return handle, d
}

// retryAfterLocked suggests how long a rejected client should wait:
// the time the worker pool needs to clear enough backlog that the
// policy could admit (approximated as the whole backlog for
// non-threshold policies), at least one second.
func (c *Controller) retryAfterLocked(cost float64) time.Duration {
	drain := c.backlog
	if t, ok := c.policy.(Threshold); ok {
		drain = c.backlog - t.Bound
	}
	sec := drain / float64(c.workers)
	if sec < 1 {
		sec = 1
	}
	return time.Duration(math.Ceil(sec)) * time.Second
}

// Finish retires an admitted job and feeds its measured duration back
// into the estimator.
func (c *Controller) Finish(handle uint64, points, freshShapes int, elapsed time.Duration) {
	c.mu.Lock()
	cost, ok := c.outstanding[handle]
	if ok {
		delete(c.outstanding, handle)
		c.backlog -= cost
		if c.backlog < 0 {
			c.backlog = 0
		}
		c.observedN++
		c.observedSec += elapsed.Seconds()
	}
	c.mu.Unlock()
	if ok {
		c.est.ObserveJob(points, freshShapes, elapsed)
	}
}

// Abort retires an admitted job without feeding the estimator (the
// job failed or was canceled, so its duration is not a service-time
// sample).
func (c *Controller) Abort(handle uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cost, ok := c.outstanding[handle]; ok {
		delete(c.outstanding, handle)
		c.backlog -= cost
		if c.backlog < 0 {
			c.backlog = 0
		}
	}
}

// Backlog returns the current estimated outstanding work in seconds.
func (c *Controller) Backlog() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backlog
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	point, shape := c.est.Costs()
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Policy:              c.policy.String(),
		Workers:             c.workers,
		Admitted:            c.admitted,
		Rejected:            c.rejected,
		BacklogSeconds:      c.backlog,
		PointCostSeconds:    point,
		ShapeCostSeconds:    shape,
		OutstandingJobs:     len(c.outstanding),
		ObservedJobs:        c.observedN,
		ObservedWorkSeconds: c.observedSec,
	}
}
