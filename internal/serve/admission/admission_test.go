package admission

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"pepatags/internal/policies"
)

func TestEstimatorDefaultsAndEstimate(t *testing.T) {
	e := NewEstimator(0, 0)
	p, s := e.Costs()
	if p != DefaultSeedPointSeconds || s != DefaultSeedShapeSeconds { //vet:allow floatcmp: seeds are copied verbatim
		t.Fatalf("default seeds not applied: point=%g shape=%g", p, s)
	}
	got := e.EstimateJob(10, 2)
	want := 10*DefaultSeedPointSeconds + 2*DefaultSeedShapeSeconds
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EstimateJob = %g, want %g", got, want)
	}
}

// TestEstimatorConverges: feeding a steady workload pulls both EWMAs
// toward the true costs regardless of the seeds.
func TestEstimatorConverges(t *testing.T) {
	e := NewEstimator(1, 1) // wildly wrong seeds
	const truePoint, trueShape = 0.002, 0.08
	for i := 0; i < 200; i++ {
		// Alternate cache-hot sweeps (no fresh shapes) with fresh-model
		// jobs; the differing mixes make the two costs identifiable.
		if i%2 == 0 {
			e.ObserveJob(50, 0, time.Duration(50*truePoint*float64(time.Second)))
		} else {
			e.ObserveJob(50, 3, time.Duration((50*truePoint+3*trueShape)*float64(time.Second)))
		}
	}
	p, s := e.Costs()
	if math.Abs(p-truePoint) > truePoint/2 {
		t.Errorf("point cost = %g, want near %g", p, truePoint)
	}
	if math.Abs(s-trueShape) > trueShape/2 {
		t.Errorf("shape cost = %g, want near %g", s, trueShape)
	}
	// The combined estimate must be accurate even if the split between
	// the two components is not uniquely identified.
	est := e.EstimateJob(50, 3)
	want := 50*truePoint + 3*trueShape
	if math.Abs(est-want) > want*0.05 {
		t.Errorf("EstimateJob = %g, want %g within 5%%", est, want)
	}
}

func TestEstimatorIgnoresGarbage(t *testing.T) {
	e := NewEstimator(0.01, 0.1)
	p0, s0 := e.Costs()
	e.ObserveJob(0, 0, time.Second)   // no points
	e.ObserveJob(10, 0, -time.Second) // negative elapsed
	e.ObserveDerive(-time.Second)
	p, s := e.Costs()
	if p != p0 || s != s0 { //vet:allow floatcmp: no observation may change the state at all
		t.Fatalf("garbage observations changed estimates: %g,%g -> %g,%g", p0, s0, p, s)
	}
}

func TestThresholdAdmitAndQueuePlaces(t *testing.T) {
	pol := Threshold{Bound: 5}
	if !pol.Admit(4.999, 100) {
		t.Error("threshold rejected below the bound")
	}
	if pol.Admit(5, 0.001) {
		t.Error("threshold admitted at the bound")
	}
	if q := pol.QueuePlaces(2); q != 2 {
		t.Errorf("QueuePlaces(2) = %d, want 2", q)
	}
	if q := pol.QueuePlaces(0); q != 0 {
		t.Errorf("QueuePlaces(0) = %d, want 0", q)
	}
}

// TestControllerAccounting: backlog grows on admit, shrinks on
// Finish/Abort, and rejections produce a Retry-After of at least a
// second.
func TestControllerAccounting(t *testing.T) {
	est := NewEstimator(1, 1) // 1 s per point: a 2-point job costs 2 s
	c := NewController(Threshold{Bound: 5}, est, 2)

	var handles []uint64
	admitted := 0
	for i := 0; i < 10; i++ {
		h, d := c.Submit(2, 0)
		if d.Admit {
			admitted++
			handles = append(handles, h)
		} else {
			if d.RetryAfter < time.Second {
				t.Errorf("reject %d: RetryAfter %v < 1s", i, d.RetryAfter)
			}
			if d.BacklogSeconds < 5 {
				t.Errorf("reject %d at backlog %g, below the bound", i, d.BacklogSeconds)
			}
		}
	}
	// Backlog after k admits is 2k; admit while backlog < 5 -> 3 jobs.
	if admitted != 3 {
		t.Fatalf("admitted %d jobs, want 3 under bound 5 at cost 2", admitted)
	}
	st := c.Stats()
	if st.Admitted != 3 || st.Rejected != 7 || st.OutstandingJobs != 3 {
		t.Fatalf("stats = %+v, want 3 admitted, 7 rejected, 3 outstanding", st)
	}
	if math.Abs(c.Backlog()-6) > 1e-12 {
		t.Fatalf("backlog = %g, want 6", c.Backlog())
	}

	c.Finish(handles[0], 2, 0, 2*time.Second)
	c.Abort(handles[1])
	if math.Abs(c.Backlog()-2) > 1e-12 {
		t.Fatalf("backlog after finish+abort = %g, want 2", c.Backlog())
	}
	st = c.Stats()
	if st.ObservedJobs != 1 || st.OutstandingJobs != 1 {
		t.Fatalf("stats after retire = %+v", st)
	}
	// Unknown handles are ignored.
	c.Finish(9999, 1, 0, time.Second)
	c.Abort(9999)
	if math.Abs(c.Backlog()-2) > 1e-12 {
		t.Fatalf("unknown handle changed backlog: %g", c.Backlog())
	}
}

func TestControllerDefaults(t *testing.T) {
	c := NewController(nil, nil, 0)
	h, d := c.Submit(1, 0)
	if !d.Admit || h == 0 {
		t.Fatal("nil policy must admit everything")
	}
	if got := c.Stats().Policy; got != "always-admit" {
		t.Fatalf("policy = %q", got)
	}
}

// TestRejectRateMatchesAdmissionModel is the implementation-vs-model
// cross-check the conform battery makes at the chain level, repeated
// here at the code level: a discrete-event simulation of Poisson
// arrivals through the Controller with a calibrated estimator must
// reproduce the blocking probability of the analyzable counterpart,
// policies.AdmissionQueue with Queue = Bound/E[job] - Servers places.
//
// Setup: c=2 workers, mean job 1 s, bound 5 s => admit while fewer
// than 5 jobs are outstanding, i.e. an M/M/2/5 loss system.
func TestRejectRateMatchesAdmissionModel(t *testing.T) {
	const (
		lambda   = 6.0
		mu       = 1.0
		servers  = 2
		bound    = 5.0
		arrivals = 20000
	)
	meanJob := 1 / mu

	model := policies.AdmissionQueue{Lambda: lambda, Mu: mu, Servers: servers, Queue: int(bound/meanJob) - servers}
	pred, err := model.Measures()
	if err != nil {
		t.Fatalf("model: %v", err)
	}

	est := NewEstimator(meanJob, 1) // one point per job at exactly the mean cost
	ctrl := NewController(Threshold{Bound: bound}, est, servers)
	rng := rand.New(rand.NewPCG(11, 13))
	exp := func(rate float64) float64 { return rng.ExpFloat64() / rate }

	// Event-driven M/M/c/K: busy holds departure times (len <= servers),
	// fifo holds admitted-but-waiting handles.
	type running struct {
		at     float64
		handle uint64
	}
	var busy []running
	var fifo []uint64
	now, rejected := 0.0, 0

	depart := func(until float64) {
		for len(busy) > 0 {
			// Find the earliest departure.
			min := 0
			for i, b := range busy {
				if b.at < busy[min].at {
					min = i
				}
			}
			if busy[min].at > until {
				return
			}
			d := busy[min]
			busy = append(busy[:min], busy[min+1:]...)
			// Feed the mean back, not the sample: the estimator is held
			// calibrated so the work threshold is exactly a job-count
			// threshold and the M/M/c/K correspondence is exact.
			ctrl.Finish(d.handle, 1, 0, time.Duration(meanJob*float64(time.Second)))
			if len(fifo) > 0 {
				h := fifo[0]
				fifo = fifo[1:]
				busy = append(busy, running{at: d.at + exp(mu), handle: h})
			}
		}
	}

	for i := 0; i < arrivals; i++ {
		now += exp(lambda)
		depart(now)
		h, d := ctrl.Submit(1, 0)
		if !d.Admit {
			rejected++
			continue
		}
		if len(busy) < servers {
			busy = append(busy, running{at: now + exp(mu), handle: h})
		} else {
			fifo = append(fifo, h)
		}
	}

	got := float64(rejected) / arrivals
	if math.Abs(got-pred.RejectProbability) > 0.03 {
		t.Errorf("empirical reject rate %.4f, model predicts %.4f", got, pred.RejectProbability)
	}
	if st := ctrl.Stats(); int(st.Rejected) != rejected {
		t.Errorf("controller counted %d rejects, simulation counted %d", st.Rejected, rejected)
	}
}
