// Package serve is the pepad daemon core: a long-running HTTP/JSON
// service that accepts sweep specs (pepatags/sweep-spec/v1, the same
// documents `tagseval -sweep` runs), executes them on a bounded job
// pool over one shared content-addressed state-space cache, and
// streams per-job progress over the obsv event machinery. cmd/pepad
// is the thin binary around it; docs/PEPAD.md is the API reference.
//
// # Jobs
//
// POST /v1/jobs admits a spec and returns 202 with a job ID. A Job
// moves queued -> running -> done/failed/canceled; every admitted job
// takes exactly one pass through the worker pool and, when a manifest
// directory is configured, leaves exactly one run manifest
// (pepatags/run-manifest/v1, tool "pepad") — a failure manifest with
// the flight-recorder tail when it was canceled or died. Results are
// served in three representations: the raw journal rows as JSON, and
// the assembled figure as text table or CSV, both byte-identical to
// the `tagseval -sweep` CLI output for the same spec (the handler
// runs the identical sweep.Assemble -> exp.FigureFromTable -> Render
// pipeline, and the engine's determinism guarantees do the rest).
//
// # Event scoping
//
// Each job carries its own obsv.EventLog: the engine's sweep.start /
// sweep.point / sweep.done events land in the job's log and are
// served on GET /v1/jobs/{id}/events by obsv.ServeEvents — SSE with
// Last-Event-ID resume for `Accept: text/event-stream` clients,
// bounded long-poll JSON otherwise. The stream ends when the job
// reaches a final state and its log closes. Server-level events
// (submissions, rejections, drain) go to a separate log on
// /v1/events, and /metrics serves the shared registry as OpenMetrics.
//
// # Admission control
//
// The serve/admission subpackage decides whether a submission is
// admitted or rejected (429 + Retry-After): a threshold policy on the
// estimated seconds of outstanding work, with per-job costs predicted
// from the point count and the number of state-space shapes the
// shared cache has not seen yet. The same policy is modelled
// analytically as policies.AdmissionQueue, and the conform battery
// cross-validates the two.
//
// # Shutdown
//
// Shutdown drains: submissions get 503 + Retry-After, queued and
// running jobs finish, workers exit. When the caller's context
// expires first, unfinished jobs are canceled through the engine's
// cooperative Cancel channel — in-flight points complete, the journal
// keeps a clean resumable prefix, and each killed job still writes a
// valid failure manifest.
package serve
