package pepatags_test

// One benchmark per reproduced artefact (figures 6-12 and the
// state-space, approximation, fluid and burstiness tables), plus
// kernel benchmarks for the substrates (PEPA derivation, steady-state
// solvers, simulator event loop). The figure benchmarks run the same
// runners as cmd/tagseval on trimmed grids; `go run ./cmd/tagseval
// -all` regenerates the full-resolution tables recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pepatags/internal/core"
	"pepatags/internal/dist"
	"pepatags/internal/exp"
	"pepatags/internal/linalg"
	"pepatags/internal/obsv"
	"pepatags/internal/pepa"
	"pepatags/internal/policies"
	"pepatags/internal/sim"
	"pepatags/internal/workload"
)

func benchFigure(b *testing.B, run func(exp.Params) (*exp.Figure, error)) {
	b.Helper()
	p := exp.ShortParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure6(b *testing.B)  { benchFigure(b, exp.Figure6) }
func BenchmarkFigure7(b *testing.B)  { benchFigure(b, exp.Figure7) }
func BenchmarkFigure8(b *testing.B)  { benchFigure(b, exp.Figure8) }
func BenchmarkFigure9(b *testing.B)  { benchFigure(b, exp.Figure9) }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, exp.Figure10) }
func BenchmarkFigure11(b *testing.B) { benchFigure(b, exp.Figure11) }
func BenchmarkFigure12(b *testing.B) { benchFigure(b, exp.Figure12) }

func BenchmarkStateSpaceTable(b *testing.B) { benchFigure(b, exp.StateSpaceTable) }
func BenchmarkApproxTable(b *testing.B)     { benchFigure(b, exp.ApproxTable) }
func BenchmarkFluidTable(b *testing.B)      { benchFigure(b, exp.FluidTable) }

func BenchmarkBurstyTable(b *testing.B) {
	p := exp.ShortParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.BurstyTable(p, 30000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlowdownTable(b *testing.B) {
	p := exp.ShortParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.SlowdownTable(p, 30000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate kernels ---

// BenchmarkTAGExpBuild measures reachable-state derivation of the
// 4331-state Figure 3 model.
func BenchmarkTAGExpBuild(b *testing.B) {
	m := core.NewTAGExp(5, 10, 42, 6, 10, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := m.Build(); c.NumStates() != 4331 {
			b.Fatal("wrong state count")
		}
	}
}

// BenchmarkTAGExpSolve measures a full build + steady-state solve +
// measures pass.
func BenchmarkTAGExpSolve(b *testing.B) {
	m := core.NewTAGExp(5, 10, 42, 6, 10, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPEPADerive measures the generic engine on the generated
// Figure 3 source (parse + derive).
func BenchmarkPEPADerive(b *testing.B) {
	src := core.NewTAGExp(5, 10, 42, 6, 10, 10).PEPASource()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := pepa.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		ss, err := pepa.Derive(m, pepa.DeriveOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if ss.Chain.NumStates() != 4331 {
			b.Fatal("wrong state count")
		}
	}
}

// BenchmarkSteadyStateGTH solves a 400-state birth-death chain with
// the stable direct method.
func BenchmarkSteadyStateGTH(b *testing.B) {
	const k = 399
	coo := linalg.NewCOO(k+1, k+1)
	for i := 0; i <= k; i++ {
		var out float64
		if i < k {
			coo.Add(i, i+1, 5)
			out += 5
		}
		if i > 0 {
			coo.Add(i, i-1, 10)
			out += 10
		}
		coo.Add(i, i, -out)
	}
	q := coo.ToCSR().ToDense()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SteadyStateGTH(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateGaussSeidel solves the 4331-state TAG generator
// iteratively.
func BenchmarkSteadyStateGaussSeidel(b *testing.B) {
	q := core.NewTAGExp(5, 10, 42, 6, 10, 10).Build().Generator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SteadyStateGaussSeidel(q, linalg.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorTAG measures simulator throughput (events/op is
// roughly jobs * 2.2 for this configuration).
func BenchmarkSimulatorTAG(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{
			Nodes: []sim.NodeConfig{
				{Capacity: 10, Timeout: policies.ConstantTimeout(0.35)},
				{Capacity: 10},
			},
			Policy: policies.FirstNode{},
			Source: &workload.StochasticSource{
				Arrivals: workload.NewPoisson(8),
				Sizes:    dist.H2ForTAG(0.1, 0.99, 100),
				Limit:    50000,
			},
			Seed: uint64(i + 1),
		}
		m := sim.NewSystem(cfg).Run(0)
		if m.Completed == 0 {
			b.Fatal("no completions")
		}
	}
}

// BenchmarkH2Solve measures the hyper-exponential model (9801 states).
func BenchmarkH2Solve(b *testing.B) {
	m := core.NewTAGH2(11, dist.H2ForTAG(0.1, 0.99, 100), 12, 6, 10, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serial vs parallel derivation and solvers ---
//
// The BenchmarkDerive*/BenchmarkSteady* families compare the serial
// reference paths against the worker-pool paths on the paper's three
// models at growing queue bounds. Run with -cpu to vary GOMAXPROCS;
// the parallel variants only pay off with real cores behind them.

// benchDerive parses once, then times derivation at each worker count.
func benchDerive(b *testing.B, src string, workerCounts ...int) {
	b.Helper()
	m, err := pepa.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := pepa.Derive(m, pepa.DeriveOptions{})
	if err != nil {
		b.Fatal(err)
	}
	want := ref.Chain.NumStates()
	for _, w := range workerCounts {
		name := "serial"
		if w > 1 {
			name = fmt.Sprintf("workers=%d", w)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ss, err := pepa.Derive(m, pepa.DeriveOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if ss.Chain.NumStates() != want {
					b.Fatalf("state count %d != %d", ss.Chain.NumStates(), want)
				}
			}
		})
	}
}

// randomAllocSource generates the Appendix A random-allocation model
// (two independent M/M/1/N queues) at queue bound n.
func randomAllocSource(n int) string {
	var sb strings.Builder
	sb.WriteString("l1 = 2.5;\nl2 = 2.5;\nmu = 10;\n")
	for _, q := range []struct{ name, arr, srv string }{
		{"QA", "arrival1", "service1"}, {"QB", "arrival2", "service2"},
	} {
		for i := 0; i <= n; i++ {
			fmt.Fprintf(&sb, "%s%d = ", q.name, i)
			switch {
			case i == 0:
				fmt.Fprintf(&sb, "(%s, l1).%s1;\n", q.arr, q.name)
			case i == n:
				fmt.Fprintf(&sb, "(%s, mu).%s%d;\n", q.srv, q.name, i-1)
			default:
				fmt.Fprintf(&sb, "(%s, l1).%s%d + (%s, mu).%s%d;\n", q.arr, q.name, i+1, q.srv, q.name, i-1)
			}
		}
	}
	sb.WriteString("QA0 || QB0\n")
	return sb.String()
}

func BenchmarkDeriveTAG(b *testing.B) {
	for _, k := range []int{10, 20, 28, 40} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			benchDerive(b, core.NewTAGExp(5, 10, 42, 6, k, k).PEPASource(), 1, 2, 4, 8)
		})
	}
}

// BenchmarkDeriveTAGReference times the legacy string-keyed serial
// engine (DeriveOptions.Reference) on the same models as
// BenchmarkDeriveTAG, so one bench run captures the integer-coded
// engine's speedup without checking out an old commit.
func BenchmarkDeriveTAGReference(b *testing.B) {
	for _, k := range []int{10, 20, 28, 40} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			m, err := pepa.Parse(core.NewTAGExp(5, 10, 42, 6, k, k).PEPASource())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pepa.Derive(m, pepa.DeriveOptions{Reference: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDeriveRandom(b *testing.B) {
	for _, n := range []int{50, 150} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			benchDerive(b, randomAllocSource(n), 1, 4)
		})
	}
}

func BenchmarkDeriveShortestQueue(b *testing.B) {
	src, err := os.ReadFile(filepath.Join("models", "appendixB_shortestqueue.pepa"))
	if err != nil {
		b.Fatal(err)
	}
	benchDerive(b, string(src), 1, 4)
}

// benchSteady times one solver configuration on the largest TAG chain.
func benchSteady(b *testing.B, q *linalg.CSR, solve func(*linalg.CSR) ([]float64, error)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyPower(b *testing.B) {
	q := core.NewTAGExp(5, 10, 42, 6, 20, 20).Build().Generator()
	b.Run("serial", func(b *testing.B) {
		benchSteady(b, q, func(q *linalg.CSR) ([]float64, error) {
			return linalg.SteadyStatePower(q, linalg.Options{})
		})
	})
	b.Run("workers=4", func(b *testing.B) {
		benchSteady(b, q, func(q *linalg.CSR) ([]float64, error) {
			return linalg.SteadyStatePower(q, linalg.Options{Workers: 4})
		})
	})
}

func BenchmarkSteadyJacobi(b *testing.B) {
	q := core.NewTAGExp(5, 10, 42, 6, 20, 20).Build().Generator()
	b.Run("serial", func(b *testing.B) {
		benchSteady(b, q, func(q *linalg.CSR) ([]float64, error) {
			return linalg.SteadyStateJacobi(q, linalg.Options{})
		})
	})
	b.Run("workers=4", func(b *testing.B) {
		benchSteady(b, q, func(q *linalg.CSR) ([]float64, error) {
			return linalg.SteadyStateJacobi(q, linalg.Options{Workers: 4})
		})
	})
}

func BenchmarkMultiNodeTable(b *testing.B) { benchFigure(b, exp.MultiNodeTable) }

// BenchmarkPassageTable uses a reduced configuration: the hitting-time
// systems are dense LU solves, cubic in the state count.
func BenchmarkPassageTable(b *testing.B) {
	p := exp.ShortParams()
	p.N, p.K = 3, 6
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.PassageTable(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErlangErrorTable(b *testing.B) {
	p := exp.ShortParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.ErlangErrorTable(p, 60000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFairnessTable(b *testing.B) { benchFigure(b, exp.FairnessTable) }

func BenchmarkTaggedTable(b *testing.B) {
	p := exp.ShortParams()
	p.N, p.K = 4, 8 // keep the absorbing chains modest per iteration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.TaggedTable(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariantsTable(b *testing.B)    { benchFigure(b, exp.VariantsTable) }
func BenchmarkSensitivityTable(b *testing.B) { benchFigure(b, exp.SensitivityTable) }

// --- metrics-registry overhead ---
//
// The *Metrics variants rerun the derive / solve / simulate kernels
// with an obsv.Registry attached; comparing them against the plain
// benchmarks above measures the observability overhead (documented in
// EXPERIMENTS.md; the acceptance bar is < 5%).

func BenchmarkPEPADeriveMetrics(b *testing.B) {
	src := core.NewTAGExp(5, 10, 42, 6, 10, 10).PEPASource()
	reg := obsv.NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := pepa.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		ss, err := pepa.Derive(m, pepa.DeriveOptions{Metrics: reg})
		if err != nil {
			b.Fatal(err)
		}
		if ss.Chain.NumStates() != 4331 {
			b.Fatal("wrong state count")
		}
	}
}

func BenchmarkSteadyStateGaussSeidelMetrics(b *testing.B) {
	q := core.NewTAGExp(5, 10, 42, 6, 10, 10).Build().Generator()
	reg := obsv.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SteadyStateGaussSeidel(q, linalg.Options{Metrics: reg}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorTAGMetrics(b *testing.B) {
	reg := obsv.NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{
			Nodes: []sim.NodeConfig{
				{Capacity: 10, Timeout: policies.ConstantTimeout(0.35)},
				{Capacity: 10},
			},
			Policy: policies.FirstNode{},
			Source: &workload.StochasticSource{
				Arrivals: workload.NewPoisson(8),
				Sizes:    dist.H2ForTAG(0.1, 0.99, 100),
				Limit:    50000,
			},
			Seed:    uint64(i + 1),
			Metrics: reg,
		}
		m := sim.NewSystem(cfg).Run(0)
		if m.Completed == 0 {
			b.Fatal("no completions")
		}
	}
}

// BenchmarkPEPADeriveTelemetry reruns the derivation kernel with the
// full CLI telemetry plane attached — registry, rate-limited event log
// draining to a discard sink, and progress callback — so the bench
// family brackets the cost of everything `-events -progress` turns on.
func BenchmarkPEPADeriveTelemetry(b *testing.B) {
	src := core.NewTAGExp(5, 10, 42, 6, 10, 10).PEPASource()
	reg := obsv.NewRegistry()
	log := obsv.NewEventLog(obsv.EventLogConfig{
		Sink:        io.Discard,
		MinInterval: obsv.DefaultCLIMinInterval,
	})
	defer log.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := pepa.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		ss, err := pepa.Derive(m, pepa.DeriveOptions{
			Metrics:  reg,
			Events:   log,
			Progress: func(obsv.Progress) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		if ss.Chain.NumStates() != 4331 {
			b.Fatal("wrong state count")
		}
	}
}
