// tagssim simulates job-allocation policies on configurable workloads
// and prints response time, slowdown, throughput, loss and
// utilisation. It covers the scenarios the Markov models cannot:
// deterministic TAG timeouts, bounded-Pareto demand and bursty
// arrivals.
//
// Examples:
//
//	tagssim -policy tag -timeout 0.35 -dist h2 -jobs 500000
//	tagssim -policy sq -dist pareto -lambda 8
//	tagssim -policy tag -timeout 0.35 -bursty
//	tagssim -policy tag -resume -timeout 0.35   # multi-level feedback
//	tagssim -stats                              # metrics registry on stderr
//	tagssim -manifest run.json                  # machine-readable record
//	tagssim -progress                           # liveness lines on stderr
//	tagssim -replications 8 -rep-workers 4      # pooled 95% CIs over 8 runs
//	tagssim -trace jobs.jsonl -replications 4   # sim-trace/v1 replay
//	tagssim -nodes 1000 -policy pod2            # thousand-node cluster
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"pepatags/internal/dist"
	"pepatags/internal/obsv"
	"pepatags/internal/policies"
	"pepatags/internal/sim"
	"pepatags/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("tagssim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		policy   = fs.String("policy", "tag", "tag | random | rr | sq | pod<d> | lwl | dynamic")
		distStr  = fs.String("dist", "exp", "exp | h2 | h2mild | pareto | det | weibull")
		lambda   = fs.Float64("lambda", 8, "mean arrival rate")
		mean     = fs.Float64("mean", 0.1, "mean service demand")
		nodes    = fs.Int("nodes", 2, "number of nodes")
		cap      = fs.Int("cap", 10, "per-node capacity (0 = unbounded)")
		timeout  = fs.Float64("timeout", 0.35, "TAG kill timeout (deterministic)")
		erlangN  = fs.Int("erlang", 0, "if > 0, use an Erlang-n timeout with the same mean")
		resume   = fs.Bool("resume", false, "resume instead of restart after a kill")
		jobs     = fs.Int("jobs", 500000, "number of jobs")
		warmup   = fs.Float64("warmup", 50, "warmup period excluded from metrics")
		seed     = fs.Uint64("seed", 1, "RNG seed")
		bursty   = fs.Bool("bursty", false, "use a bursty MMPP-2 arrival stream with the same mean rate")
		trace    = fs.String("trace", "", "trace file: sim-trace/v1 JSON lines (.jsonl) or CSV arrival,size pairs (overrides -dist/-lambda/-jobs)")
		reps     = fs.Int("replications", 1, "independent replications; > 1 reports pooled 95% CIs")
		repWork  = fs.Int("rep-workers", 0, "parallel replication workers (0 = one per replication)")
		coreName = fs.String("core", "calendar", "event core: calendar | heap (heap is the differential reference)")
		stats    = fs.Bool("stats", false, "print the metrics-registry summary (counters, gauges, histograms) to stderr")
		manifest = fs.String("manifest", "", "write a JSON run manifest to this path")
		debug    = fs.String("debug-addr", "", "serve pprof/expvar/metrics/events on this address (e.g. :6060) for the duration of the run")
		progress = fs.Bool("progress", false, "print periodic progress lines (events/sec, completed jobs, ETA) to stderr")
		progIv   = fs.Duration("progress-interval", obsv.DefaultHeartbeatInterval, "interval between -progress lines")
		events   = fs.String("events", "", "write JSON-lines structured events to this file")
		genTrace = fs.String("gen-trace", "", "write a sim-trace/v1 file to this path and exit (seeded by -seed)")
		genJobs  = fs.Int("gen-jobs", 10000, "job count for -gen-trace")
		genKind  = fs.String("gen-kind", "pareto", "-gen-trace workload: pareto (Poisson + bounded-Pareto) | mmpp (bursty MMPP-2 + exponential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *genTrace != "" {
		return writeGeneratedTrace(*genTrace, *genKind, *genJobs, *seed, *lambda, *mean, stderr)
	}

	var sizes dist.Distribution
	switch *distStr {
	case "exp":
		sizes = dist.NewExponential(1 / *mean)
	case "h2":
		sizes = dist.H2ForTAG(*mean, 0.99, 100)
	case "h2mild":
		sizes = dist.H2ForTAG(*mean, 0.95, 10)
	case "pareto":
		// Heavy-tailed with the requested mean: solve bounds around the
		// Harchol-Balter shape alpha = 1.1, p/k = 10^5.
		b := dist.NewBoundedPareto(1, 1e5, 1.1)
		scale := *mean / b.Mean()
		sizes = dist.NewBoundedPareto(scale, 1e5*scale, 1.1)
	case "det":
		sizes = dist.Deterministic{Value: *mean}
	case "weibull":
		sizes = dist.WeibullWithMean(0.5, *mean)
	default:
		return fmt.Errorf("unknown dist %q", *distStr)
	}

	// Sources are stateful (arrival clocks, MMPP phase, trace cursors),
	// so each replication gets a fresh one from this factory; the
	// single-run path just calls it once.
	newArrivals := func() workload.ArrivalProcess {
		if *bursty {
			// Mean-preserving: equal phase occupancy at 1.9x / 0.1x.
			return workload.NewMMPP2(1.9**lambda, 0.1**lambda, 0.5, 0.5)
		}
		return workload.NewPoisson(*lambda)
	}
	arrivals := newArrivals()
	newSource := func() workload.Source {
		return &workload.StochasticSource{Arrivals: newArrivals(), Sizes: sizes, Limit: *jobs}
	}

	cfg := sim.Config{
		Seed:   *seed,
		Warmup: *warmup,
	}
	switch *coreName {
	case "calendar":
	case "heap":
		cfg.ReferenceCore = true
	default:
		return fmt.Errorf("unknown core %q (want calendar or heap)", *coreName)
	}
	if *reps < 1 {
		return fmt.Errorf("need at least 1 replication, got %d", *reps)
	}
	var reg *obsv.Registry
	if *stats || *manifest != "" || *debug != "" {
		reg = obsv.NewRegistry()
		cfg.Metrics = reg
	}
	tele, err := obsv.StartTelemetry(obsv.TelemetryOptions{
		Registry:         reg,
		EventsPath:       *events,
		Progress:         *progress,
		ProgressInterval: *progIv,
		DebugAddr:        *debug,
		Stderr:           stderr,
		ForceLog:         *manifest != "",
	})
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tele.Fail("tagssim", err, *manifest, args)
		}
		tele.Close()
	}()
	cfg.Events = tele.Log
	if *progress {
		cfg.Progress = tele.Heartbeat.ObserveProgress
		tele.Heartbeat.SetTotal(float64(*jobs))
	}
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		var tr *workload.Trace
		if strings.HasSuffix(*trace, ".jsonl") {
			tr, err = workload.ParseTrace(f)
		} else {
			tr, err = workload.LoadTraceCSV(f)
		}
		f.Close()
		if err != nil {
			return err
		}
		newSource = func() workload.Source { return &workload.Trace{Jobs: tr.Jobs} }
		cfg.Warmup = 0
	}
	cfg.Source = newSource()
	to := policies.ConstantTimeout(*timeout)
	if *erlangN > 0 {
		to = policies.ErlangTimeout(*erlangN, float64(*erlangN)/(*timeout))
	}
	for i := 0; i < *nodes; i++ {
		nc := sim.NodeConfig{Capacity: *cap}
		if (*policy == "tag" || *policy == "dynamic") && i < *nodes-1 {
			nc.Timeout = to
			nc.Resume = *resume
		}
		cfg.Nodes = append(cfg.Nodes, nc)
	}
	// Policies can be stateful (round-robin cursors), so replications
	// construct a fresh one per run, like sources.
	var sys *sim.System
	newPolicy := func() sim.Policy { return nil }
	switch *policy {
	case "tag":
		newPolicy = func() sim.Policy { return policies.FirstNode{} }
	case "dynamic":
		newPolicy = func() sim.Policy { return policies.DynamicTAG{} }
		cfg.Nodes[0].Timeout = policies.AdaptiveTimeout(
			func() int { return sys.QueueLength(0) }, *timeout, 0.15)
	case "random":
		newPolicy = func() sim.Policy { return policies.NewUniformRandom(*nodes) }
	case "rr":
		newPolicy = func() sim.Policy { return &policies.RoundRobin{} }
	case "sq":
		newPolicy = func() sim.Policy { return policies.ShortestQueue{} }
	case "lwl":
		newPolicy = func() sim.Policy { return policies.LeastWorkLeft{} }
	default:
		ds, ok := strings.CutPrefix(*policy, "pod")
		if !ok {
			return fmt.Errorf("unknown policy %q", *policy)
		}
		var d int
		if _, err := fmt.Sscanf(ds, "%d", &d); err != nil || d < 1 {
			return fmt.Errorf("bad power-of-d policy %q (want e.g. pod2)", *policy)
		}
		newPolicy = func() sim.Policy { return policies.NewPowerOfD(d) }
	}
	cfg.Policy = newPolicy()

	if *reps > 1 {
		if *policy == "dynamic" {
			return fmt.Errorf("-replications does not support -policy dynamic (the adaptive timeout closes over one system)")
		}
		return runReplications(repRun{
			base:      cfg,
			newPolicy: newPolicy,
			newSource: newSource,
			reps:      *reps,
			workers:   *repWork,
			core:      *coreName,
			trace:     *trace,
			args:      args,
			stats:     *stats,
			manifest:  *manifest,
			tele:      tele,
			reg:       reg,
		}, stdout, stderr)
	}

	sys = sim.NewSystem(cfg)
	m := sys.Run(0)

	fmt.Fprintf(stdout, "policy:        %s\n", cfg.Policy)
	fmt.Fprintf(stdout, "arrivals:      %s\n", arrivals)
	fmt.Fprintf(stdout, "service:       %s (mean %.4g, SCV %.4g)\n", sizes, sizes.Mean(), dist.SCV(sizes))
	fmt.Fprintf(stdout, "completed:     %d   dropped: %d   killed: %d\n", m.Completed, m.Dropped, m.Killed)
	fmt.Fprintf(stdout, "response time: %s\n", m.Response.String())
	fmt.Fprintf(stdout, "mean slowdown: %s\n", m.Slowdown.String())
	fmt.Fprintf(stdout, "throughput:    %.6g jobs/s\n", m.Throughput())
	fmt.Fprintf(stdout, "loss prob:     %.6g\n", m.LossProbability())
	for i := 0; i < *nodes; i++ {
		fmt.Fprintf(stdout, "node %d util:   %.4f\n", i, m.Utilization(i))
	}
	if *stats {
		fmt.Fprintln(stderr, "metrics registry:")
		if err := reg.WriteSummary(stderr); err != nil {
			return err
		}
	}
	if *manifest != "" {
		mf := obsv.NewManifest("tagssim")
		mf.Args = args
		mf.Params = map[string]any{
			"policy": *policy, "dist": *distStr, "lambda": *lambda,
			"mean": *mean, "nodes": *nodes, "cap": *cap,
			"timeout": *timeout, "erlang": *erlangN, "resume": *resume,
			"jobs": *jobs, "warmup": *warmup, "bursty": *bursty,
			"trace": *trace, "core": *coreName,
		}
		mf.Seed = *seed
		mf.Measures = map[string]float64{
			"completed":     float64(m.Completed),
			"dropped":       float64(m.Dropped),
			"killed":        float64(m.Killed),
			"response_mean": m.Response.Mean(),
			"slowdown_mean": m.Slowdown.Mean(),
			"throughput":    m.Throughput(),
			"loss_prob":     m.LossProbability(),
		}
		for i := 0; i < *nodes; i++ {
			mf.Measures[fmt.Sprintf("util.%d", i)] = m.Utilization(i)
		}
		mf.Metrics = reg.Snapshot()
		mf.Events = tele.Record()
		if err := mf.WriteFile(*manifest); err != nil {
			return err
		}
	}
	return nil
}

// writeGeneratedTrace materialises one of the internal/workload trace
// generators into a sim-trace/v1 file, so `tagssim -trace` (and any
// other consumer of the format) can replay a pinned workload.
func writeGeneratedTrace(path, kind string, n int, seed uint64, lambda, mean float64, stderr io.Writer) error {
	if n < 1 {
		return fmt.Errorf("-gen-jobs must be at least 1, got %d", n)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x7ace))
	var jobs []workload.Job
	switch kind {
	case "pareto":
		// Same heavy-tailed shape as -dist pareto: alpha 1.1, p/k = 1e5,
		// bounds scaled so the mean size is -mean.
		b := dist.NewBoundedPareto(1, 1e5, 1.1)
		scale := mean / b.Mean()
		jobs = workload.BoundedParetoTrace(rng, n, lambda, scale, 1e5*scale, 1.1)
	case "mmpp":
		// Same mean-preserving burst profile as -bursty.
		jobs = workload.MMPPTrace(rng, n, 1.9*lambda, 0.1*lambda, 0.5, 0.5, 1/mean)
	default:
		return fmt.Errorf("unknown -gen-kind %q (want pareto or mmpp)", kind)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.WriteTrace(f, jobs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d-job %s trace to %s\n", len(jobs), kind, path)
	return nil
}

// repRun carries the replication-mode inputs from flag parsing to the
// batch runner.
type repRun struct {
	base      sim.Config
	newPolicy func() sim.Policy
	newSource func() workload.Source
	reps      int
	workers   int
	core      string
	trace     string
	args      []string
	stats     bool
	manifest  string
	tele      *obsv.RunTelemetry
	reg       *obsv.Registry
}

// runReplications drives the embarrassingly-parallel batch path and
// prints the pooled 95% confidence intervals.
func runReplications(r repRun, stdout, stderr io.Writer) error {
	start := time.Now()
	rc := sim.ReplicationConfig{
		Base:      r.base,
		NewSource: func(rep int) workload.Source { return r.newSource() },
		NewPolicy: func(rep int) sim.Policy { return r.newPolicy() },
		Reps:      r.reps,
		Workers:   r.workers,
		Events:    r.tele.Log,
	}
	if r.tele.Heartbeat != nil {
		rc.Progress = r.tele.Heartbeat.ObserveProgress
		r.tele.Heartbeat.SetTotal(float64(r.reps))
	}
	res, err := sim.RunReplications(rc)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	var completed, dropped, killed int
	for _, m := range res.Metrics {
		completed += m.Completed
		dropped += m.Dropped
		killed += m.Killed
	}
	fmt.Fprintf(stdout, "policy:        %s\n", r.base.Policy)
	fmt.Fprintf(stdout, "replications:  %d (workers %d, core %s)\n", r.reps, rc.Workers, r.core)
	fmt.Fprintf(stdout, "completed:     %d   dropped: %d   killed: %d\n", completed, dropped, killed)
	fmt.Fprintf(stdout, "response time: %s\n", res.Response)
	fmt.Fprintf(stdout, "mean slowdown: %s\n", res.Slowdown)
	fmt.Fprintf(stdout, "loss prob:     %s\n", res.Loss)
	fmt.Fprintf(stdout, "events:        %d (%.3g events/s wall)\n",
		res.Events, float64(res.Events)/elapsed.Seconds())
	if r.stats {
		fmt.Fprintln(stderr, "metrics registry:")
		if err := r.reg.WriteSummary(stderr); err != nil {
			return err
		}
	}
	if r.manifest != "" {
		mf := obsv.NewManifest("tagssim")
		mf.Args = r.args
		mf.Seed = r.base.Seed
		mf.Workers = rc.Workers
		mf.Sim = &obsv.SimRecord{
			Replications: r.reps,
			Workers:      rc.Workers,
			Core:         r.core,
			Trace:        r.trace,
			Events:       int64(res.Events),
			ResponseMean: res.Response.Mean,
			ResponseCI:   res.Response.HalfWidth,
			SlowdownMean: res.Slowdown.Mean,
			SlowdownCI:   res.Slowdown.HalfWidth,
			LossMean:     res.Loss.Mean,
			LossCI:       res.Loss.HalfWidth,
			ElapsedSec:   elapsed.Seconds(),
		}
		mf.Measures = map[string]float64{
			"completed":     float64(completed),
			"dropped":       float64(dropped),
			"killed":        float64(killed),
			"response_mean": res.Response.Mean,
			"response_ci":   res.Response.HalfWidth,
			"slowdown_mean": res.Slowdown.Mean,
			"slowdown_ci":   res.Slowdown.HalfWidth,
			"loss_mean":     res.Loss.Mean,
			"loss_ci":       res.Loss.HalfWidth,
		}
		if r.reg != nil {
			mf.Metrics = r.reg.Snapshot()
		}
		mf.Events = r.tele.Record()
		if err := mf.WriteFile(r.manifest); err != nil {
			return err
		}
	}
	return nil
}
