// tagssim simulates job-allocation policies on configurable workloads
// and prints response time, slowdown, throughput, loss and
// utilisation. It covers the scenarios the Markov models cannot:
// deterministic TAG timeouts, bounded-Pareto demand and bursty
// arrivals.
//
// Examples:
//
//	tagssim -policy tag -timeout 0.35 -dist h2 -jobs 500000
//	tagssim -policy sq -dist pareto -lambda 8
//	tagssim -policy tag -timeout 0.35 -bursty
//	tagssim -policy tag -resume -timeout 0.35   # multi-level feedback
//	tagssim -stats                              # metrics registry on stderr
//	tagssim -manifest run.json                  # machine-readable record
//	tagssim -progress                           # liveness lines on stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pepatags/internal/dist"
	"pepatags/internal/obsv"
	"pepatags/internal/policies"
	"pepatags/internal/sim"
	"pepatags/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("tagssim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		policy   = fs.String("policy", "tag", "tag | random | rr | sq | lwl | dynamic")
		distStr  = fs.String("dist", "exp", "exp | h2 | h2mild | pareto | det | weibull")
		lambda   = fs.Float64("lambda", 8, "mean arrival rate")
		mean     = fs.Float64("mean", 0.1, "mean service demand")
		nodes    = fs.Int("nodes", 2, "number of nodes")
		cap      = fs.Int("cap", 10, "per-node capacity (0 = unbounded)")
		timeout  = fs.Float64("timeout", 0.35, "TAG kill timeout (deterministic)")
		erlangN  = fs.Int("erlang", 0, "if > 0, use an Erlang-n timeout with the same mean")
		resume   = fs.Bool("resume", false, "resume instead of restart after a kill")
		jobs     = fs.Int("jobs", 500000, "number of jobs")
		warmup   = fs.Float64("warmup", 50, "warmup period excluded from metrics")
		seed     = fs.Uint64("seed", 1, "RNG seed")
		bursty   = fs.Bool("bursty", false, "use a bursty MMPP-2 arrival stream with the same mean rate")
		trace    = fs.String("trace", "", "CSV file of arrival,size pairs (overrides -dist/-lambda/-jobs)")
		stats    = fs.Bool("stats", false, "print the metrics-registry summary (counters, gauges, histograms) to stderr")
		manifest = fs.String("manifest", "", "write a JSON run manifest to this path")
		debug    = fs.String("debug-addr", "", "serve pprof/expvar/metrics/events on this address (e.g. :6060) for the duration of the run")
		progress = fs.Bool("progress", false, "print periodic progress lines (events/sec, completed jobs, ETA) to stderr")
		progIv   = fs.Duration("progress-interval", obsv.DefaultHeartbeatInterval, "interval between -progress lines")
		events   = fs.String("events", "", "write JSON-lines structured events to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sizes dist.Distribution
	switch *distStr {
	case "exp":
		sizes = dist.NewExponential(1 / *mean)
	case "h2":
		sizes = dist.H2ForTAG(*mean, 0.99, 100)
	case "h2mild":
		sizes = dist.H2ForTAG(*mean, 0.95, 10)
	case "pareto":
		// Heavy-tailed with the requested mean: solve bounds around the
		// Harchol-Balter shape alpha = 1.1, p/k = 10^5.
		b := dist.NewBoundedPareto(1, 1e5, 1.1)
		scale := *mean / b.Mean()
		sizes = dist.NewBoundedPareto(scale, 1e5*scale, 1.1)
	case "det":
		sizes = dist.Deterministic{Value: *mean}
	case "weibull":
		sizes = dist.WeibullWithMean(0.5, *mean)
	default:
		return fmt.Errorf("unknown dist %q", *distStr)
	}

	var arrivals workload.ArrivalProcess
	if *bursty {
		// Mean-preserving: equal phase occupancy at 1.9x / 0.1x.
		arrivals = workload.NewMMPP2(1.9**lambda, 0.1**lambda, 0.5, 0.5)
	} else {
		arrivals = workload.NewPoisson(*lambda)
	}

	cfg := sim.Config{
		Source: &workload.StochasticSource{Arrivals: arrivals, Sizes: sizes, Limit: *jobs},
		Seed:   *seed,
		Warmup: *warmup,
	}
	var reg *obsv.Registry
	if *stats || *manifest != "" || *debug != "" {
		reg = obsv.NewRegistry()
		cfg.Metrics = reg
	}
	tele, err := obsv.StartTelemetry(obsv.TelemetryOptions{
		Registry:         reg,
		EventsPath:       *events,
		Progress:         *progress,
		ProgressInterval: *progIv,
		DebugAddr:        *debug,
		Stderr:           stderr,
		ForceLog:         *manifest != "",
	})
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tele.Fail("tagssim", err, *manifest, args)
		}
		tele.Close()
	}()
	cfg.Events = tele.Log
	if *progress {
		cfg.Progress = tele.Heartbeat.ObserveProgress
		tele.Heartbeat.SetTotal(float64(*jobs))
	}
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		tr, err := workload.LoadTraceCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Source = tr
		cfg.Warmup = 0
	}
	to := policies.ConstantTimeout(*timeout)
	if *erlangN > 0 {
		to = policies.ErlangTimeout(*erlangN, float64(*erlangN)/(*timeout))
	}
	for i := 0; i < *nodes; i++ {
		nc := sim.NodeConfig{Capacity: *cap}
		if (*policy == "tag" || *policy == "dynamic") && i < *nodes-1 {
			nc.Timeout = to
			nc.Resume = *resume
		}
		cfg.Nodes = append(cfg.Nodes, nc)
	}
	var sys *sim.System
	switch *policy {
	case "tag":
		cfg.Policy = policies.FirstNode{}
	case "dynamic":
		cfg.Policy = policies.DynamicTAG{}
		cfg.Nodes[0].Timeout = policies.AdaptiveTimeout(
			func() int { return sys.QueueLength(0) }, *timeout, 0.15)
	case "random":
		cfg.Policy = policies.NewUniformRandom(*nodes)
	case "rr":
		cfg.Policy = &policies.RoundRobin{}
	case "sq":
		cfg.Policy = policies.ShortestQueue{}
	case "lwl":
		cfg.Policy = policies.LeastWorkLeft{}
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	sys = sim.NewSystem(cfg)
	m := sys.Run(0)

	fmt.Fprintf(stdout, "policy:        %s\n", cfg.Policy)
	fmt.Fprintf(stdout, "arrivals:      %s\n", arrivals)
	fmt.Fprintf(stdout, "service:       %s (mean %.4g, SCV %.4g)\n", sizes, sizes.Mean(), dist.SCV(sizes))
	fmt.Fprintf(stdout, "completed:     %d   dropped: %d   killed: %d\n", m.Completed, m.Dropped, m.Killed)
	fmt.Fprintf(stdout, "response time: %s\n", m.Response.String())
	fmt.Fprintf(stdout, "mean slowdown: %s\n", m.Slowdown.String())
	fmt.Fprintf(stdout, "throughput:    %.6g jobs/s\n", m.Throughput())
	fmt.Fprintf(stdout, "loss prob:     %.6g\n", m.LossProbability())
	for i := 0; i < *nodes; i++ {
		fmt.Fprintf(stdout, "node %d util:   %.4f\n", i, m.Utilization(i))
	}
	if *stats {
		fmt.Fprintln(stderr, "metrics registry:")
		if err := reg.WriteSummary(stderr); err != nil {
			return err
		}
	}
	if *manifest != "" {
		mf := obsv.NewManifest("tagssim")
		mf.Args = args
		mf.Params = map[string]any{
			"policy": *policy, "dist": *distStr, "lambda": *lambda,
			"mean": *mean, "nodes": *nodes, "cap": *cap,
			"timeout": *timeout, "erlang": *erlangN, "resume": *resume,
			"jobs": *jobs, "warmup": *warmup, "bursty": *bursty,
			"trace": *trace,
		}
		mf.Seed = *seed
		mf.Measures = map[string]float64{
			"completed":     float64(m.Completed),
			"dropped":       float64(m.Dropped),
			"killed":        float64(m.Killed),
			"response_mean": m.Response.Mean(),
			"slowdown_mean": m.Slowdown.Mean(),
			"throughput":    m.Throughput(),
			"loss_prob":     m.LossProbability(),
		}
		for i := 0; i < *nodes; i++ {
			mf.Measures[fmt.Sprintf("util.%d", i)] = m.Utilization(i)
		}
		mf.Metrics = reg.Snapshot()
		mf.Events = tele.Record()
		if err := mf.WriteFile(*manifest); err != nil {
			return err
		}
	}
	return nil
}
