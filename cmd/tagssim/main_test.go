package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errs bytes.Buffer
	if err := run(args, &out, &errs); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestRunTAGH2(t *testing.T) {
	out := runOK(t, "-policy", "tag", "-dist", "h2", "-jobs", "20000", "-timeout", "0.35")
	for _, want := range []string{"policy:", "tag/first-node", "response time:", "throughput:", "node 0 util"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, p := range []string{"tag", "random", "rr", "sq", "lwl", "dynamic"} {
		out := runOK(t, "-policy", p, "-jobs", "5000")
		if !strings.Contains(out, "completed:") {
			t.Fatalf("policy %s: missing output:\n%s", p, out)
		}
	}
}

func TestRunAllDists(t *testing.T) {
	for _, d := range []string{"exp", "h2", "h2mild", "pareto", "det"} {
		out := runOK(t, "-dist", d, "-jobs", "5000")
		if !strings.Contains(out, "service:") {
			t.Fatalf("dist %s: missing output:\n%s", d, out)
		}
	}
}

func TestRunBurstyAndErlangAndResume(t *testing.T) {
	out := runOK(t, "-bursty", "-erlang", "6", "-resume", "-jobs", "5000")
	if !strings.Contains(out, "MMPP2") {
		t.Fatalf("expected bursty arrivals:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-policy", "nope", "-jobs", "10"}, &out, &errs); err == nil {
		t.Fatal("unknown policy must fail")
	}
	if err := run([]string{"-dist", "nope", "-jobs", "10"}, &out, &errs); err == nil {
		t.Fatal("unknown dist must fail")
	}
}

func TestRunWeibull(t *testing.T) {
	out := runOK(t, "-dist", "weibull", "-jobs", "5000")
	if !strings.Contains(out, "Weibull") {
		t.Fatalf("expected Weibull service:\n%s", out)
	}
}

func TestRunTraceFile(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "trace*.csv")
	if err != nil {
		t.Fatal(err)
	}
	// The intro worked example with timeout 3.5 -> mean response 16.67.
	if _, err := f.WriteString("0,4\n0,5\n0,6\n0,7\n0,3\n0,2\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := runOK(t, "-trace", f.Name(), "-policy", "tag", "-timeout", "3.5", "-cap", "0")
	if !strings.Contains(out, "16.6667") {
		t.Fatalf("expected the worked-example mean:\n%s", out)
	}
}
