package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pepatags/internal/obsv"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errs bytes.Buffer
	if err := run(args, &out, &errs); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestRunTAGH2(t *testing.T) {
	out := runOK(t, "-policy", "tag", "-dist", "h2", "-jobs", "20000", "-timeout", "0.35")
	for _, want := range []string{"policy:", "tag/first-node", "response time:", "throughput:", "node 0 util"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, p := range []string{"tag", "random", "rr", "sq", "lwl", "dynamic"} {
		out := runOK(t, "-policy", p, "-jobs", "5000")
		if !strings.Contains(out, "completed:") {
			t.Fatalf("policy %s: missing output:\n%s", p, out)
		}
	}
}

func TestRunAllDists(t *testing.T) {
	for _, d := range []string{"exp", "h2", "h2mild", "pareto", "det"} {
		out := runOK(t, "-dist", d, "-jobs", "5000")
		if !strings.Contains(out, "service:") {
			t.Fatalf("dist %s: missing output:\n%s", d, out)
		}
	}
}

func TestRunBurstyAndErlangAndResume(t *testing.T) {
	out := runOK(t, "-bursty", "-erlang", "6", "-resume", "-jobs", "5000")
	if !strings.Contains(out, "MMPP2") {
		t.Fatalf("expected bursty arrivals:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-policy", "nope", "-jobs", "10"}, &out, &errs); err == nil {
		t.Fatal("unknown policy must fail")
	}
	if err := run([]string{"-dist", "nope", "-jobs", "10"}, &out, &errs); err == nil {
		t.Fatal("unknown dist must fail")
	}
}

func TestRunWeibull(t *testing.T) {
	out := runOK(t, "-dist", "weibull", "-jobs", "5000")
	if !strings.Contains(out, "Weibull") {
		t.Fatalf("expected Weibull service:\n%s", out)
	}
}

func TestRunStatsAndManifest(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "run.json")
	var plain, out, errs bytes.Buffer
	// 50000 jobs ≈ 100k events, enough to cross the 2^16-event
	// progress tick at least once.
	base := []string{"-jobs", "50000", "-seed", "7"}
	if err := run(base, &plain, &errs); err != nil {
		t.Fatal(err)
	}
	errs.Reset()
	args := append(append([]string{}, base...), "-stats", "-progress", "-manifest", mpath)
	if err := run(args, &out, &errs); err != nil {
		t.Fatal(err)
	}

	// Attaching the registry must not perturb the simulation.
	if plain.String() != out.String() {
		t.Fatalf("instrumented run changed the results:\nplain:\n%s\ninstrumented:\n%s", plain.String(), out.String())
	}
	for _, want := range []string{"metrics registry:", "counter", "sim.completed", "histogram", "sim.response", "progress: phase=sim"} {
		if !strings.Contains(errs.String(), want) {
			t.Fatalf("missing %q on stderr:\n%s", want, errs.String())
		}
	}

	m, err := obsv.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "tagssim" || m.Seed != 7 {
		t.Fatalf("bad manifest header: tool=%q seed=%d", m.Tool, m.Seed)
	}
	for _, k := range []string{"completed", "response_mean", "throughput", "loss_prob", "util.0", "util.1"} {
		if _, ok := m.Measures[k]; !ok {
			t.Fatalf("measure %q missing; have %v", k, m.Measures)
		}
	}
	if m.Params["policy"] != "tag" || m.Params["jobs"] != float64(50000) {
		t.Fatalf("bad params: %v", m.Params)
	}
	// The registry snapshot in the manifest must agree with the measures.
	var completedCounter float64 = -1
	for _, mt := range m.Metrics {
		if mt.Name == "sim.completed" {
			completedCounter = float64(mt.Value)
		}
	}
	if completedCounter != m.Measures["completed"] {
		t.Fatalf("sim.completed counter %v != completed measure %v", completedCounter, m.Measures["completed"])
	}
}

func TestRunTraceFile(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "trace*.csv")
	if err != nil {
		t.Fatal(err)
	}
	// The intro worked example with timeout 3.5 -> mean response 16.67.
	if _, err := f.WriteString("0,4\n0,5\n0,6\n0,7\n0,3\n0,2\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := runOK(t, "-trace", f.Name(), "-policy", "tag", "-timeout", "3.5", "-cap", "0")
	if !strings.Contains(out, "16.6667") {
		t.Fatalf("expected the worked-example mean:\n%s", out)
	}
}
