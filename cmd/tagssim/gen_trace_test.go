package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pepatags/internal/obsv"
	"pepatags/internal/workload"
)

func TestGenTraceKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"pareto", "mmpp"} {
		path := filepath.Join(dir, kind+".jsonl")
		var out, errs bytes.Buffer
		err := run([]string{"-gen-trace", path, "-gen-kind", kind, "-gen-jobs", "500", "-seed", "3"}, &out, &errs)
		if err != nil {
			t.Fatalf("gen-trace %s: %v", kind, err)
		}
		if !strings.Contains(errs.String(), "wrote 500-job "+kind+" trace") {
			t.Fatalf("missing confirmation on stderr: %s", errs.String())
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := workload.ParseTrace(f)
		f.Close()
		if err != nil {
			t.Fatalf("generated %s trace does not parse: %v", kind, err)
		}
		if len(tr.Jobs) != 500 {
			t.Fatalf("%s trace has %d jobs want 500", kind, len(tr.Jobs))
		}

		// The generated file must replay through the -trace path.
		replay := runOK(t, "-trace", path, "-policy", "sq")
		if !strings.Contains(replay, "completed:") {
			t.Fatalf("replay of %s trace produced no stats:\n%s", kind, replay)
		}
	}
}

func TestGenTraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")}
	for _, p := range paths {
		var out, errs bytes.Buffer
		if err := run([]string{"-gen-trace", p, "-seed", "9"}, &out, &errs); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must generate byte-identical traces")
	}
}

func TestGenTraceErrors(t *testing.T) {
	var out, errs bytes.Buffer
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := run([]string{"-gen-trace", path, "-gen-jobs", "0"}, &out, &errs); err == nil {
		t.Fatal("gen-jobs 0 must fail")
	}
	if err := run([]string{"-gen-trace", path, "-gen-kind", "nope"}, &out, &errs); err == nil {
		t.Fatal("unknown gen-kind must fail")
	}
	if err := run([]string{"-gen-trace", filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")}, &out, &errs); err == nil {
		t.Fatal("unwritable path must fail")
	}
}

func TestRunReplicationsPooled(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "reps.json")
	var out, errs bytes.Buffer
	args := []string{"-policy", "pod2", "-nodes", "4", "-jobs", "3000", "-seed", "5",
		"-replications", "3", "-rep-workers", "2", "-stats", "-manifest", mpath}
	if err := run(args, &out, &errs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"replications:  3", "response time:", "mean slowdown:", "loss prob:", "±", "events:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errs.String(), "metrics registry:") {
		t.Fatalf("missing registry summary on stderr:\n%s", errs.String())
	}

	m, err := obsv.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sim == nil {
		t.Fatal("replication manifest must carry a sim section")
	}
	if m.Sim.Replications != 3 || m.Sim.Workers != 2 || m.Sim.Core != "calendar" {
		t.Fatalf("sim section %+v", m.Sim)
	}
	if m.Sim.Events <= 0 {
		t.Fatalf("sim section events %d", m.Sim.Events)
	}
	if m.Measures["response_mean"] != m.Sim.ResponseMean { //vet:allow floatcmp: same float stored twice
		t.Fatal("measures and sim section disagree on the pooled mean")
	}
}

// The pooled statistics must not depend on the worker count: run the
// same batch serially and maximally parallel and compare every
// statistical output line (only the wall-clock events/s line differs).
func TestRunReplicationsWorkerCountInvariant(t *testing.T) {
	stats := func(workers string) string {
		var out, errs bytes.Buffer
		args := []string{"-policy", "sq", "-jobs", "2000", "-seed", "11",
			"-replications", "4", "-rep-workers", workers}
		if err := run(args, &out, &errs); err != nil {
			t.Fatal(err)
		}
		var keep []string
		for _, ln := range strings.Split(out.String(), "\n") {
			if strings.Contains(ln, "events/s wall") || strings.HasPrefix(ln, "replications:") {
				continue
			}
			keep = append(keep, ln)
		}
		return strings.Join(keep, "\n")
	}
	if serial, parallel := stats("1"), stats("4"); serial != parallel {
		t.Fatalf("worker count leaked into pooled stats:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

func TestRunReplicationsErrors(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-replications", "0", "-jobs", "10"}, &out, &errs); err == nil {
		t.Fatal("replications 0 must fail")
	}
	if err := run([]string{"-replications", "2", "-policy", "dynamic", "-jobs", "10"}, &out, &errs); err == nil {
		t.Fatal("dynamic policy cannot replicate")
	}
	if err := run([]string{"-core", "nope", "-jobs", "10"}, &out, &errs); err == nil {
		t.Fatal("unknown core must fail")
	}
}
