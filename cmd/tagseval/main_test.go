package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pepatags/internal/exp"
	"pepatags/internal/obsv"
)

func TestRunList(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-list"}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figure6", "figure12", "statespace", "tagged", "fairness"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in list:\n%s", want, out.String())
		}
	}
}

func TestRunOneFigureCSV(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-short", "-csv", "-fig", "statespace"}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "4331") {
		t.Fatalf("missing state count:\n%s", s)
	}
	if strings.Contains(s, "#") {
		t.Fatalf("CSV should drop comments:\n%s", s)
	}
}

func TestRunApproxTable(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-fig", "approx"}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "6.18") {
		t.Fatalf("missing balance timeout:\n%s", out.String())
	}
}

// TestManifestMatchesTableBitForBit is the acceptance check for the
// -manifest flag: the figure6 sweep (8 timeout rates in the short
// grid) is rendered once to stdout and once from the manifest's raw
// float64 series, and the two byte streams must be identical.
func TestManifestMatchesTableBitForBit(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "run.json")
	var out, errs bytes.Buffer
	if err := run([]string{"-short", "-fig", "figure6", "-manifest", mpath}, &out, &errs); err != nil {
		t.Fatal(err)
	}

	m, err := obsv.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "tagseval" || len(m.Artefacts) != 1 {
		t.Fatalf("bad manifest: tool=%q artefacts=%d", m.Tool, len(m.Artefacts))
	}
	rec := m.Artefacts[0]
	if rec.ID != "figure6" || rec.ElapsedSec <= 0 {
		t.Fatalf("bad artefact record: %+v", rec)
	}
	if len(rec.Series[0].X) < 3 {
		t.Fatalf("expected a sweep over >= 3 timeouts, got %d", len(rec.Series[0].X))
	}

	var fromManifest bytes.Buffer
	if err := exp.FigureFromArtefact(rec).Render(&fromManifest); err != nil {
		t.Fatal(err)
	}
	fromManifest.WriteByte('\n') // run() prints a blank line after each table
	if got, want := out.String(), fromManifest.String(); got != want {
		t.Fatalf("stdout and manifest-rendered table differ:\nstdout:\n%s\nmanifest:\n%s", got, want)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-fig", "nope"}, &out, &errs); err == nil {
		t.Fatal("expected unknown-artefact error")
	}
}

func TestRunNoArgs(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run(nil, &out, &errs); err == nil {
		t.Fatal("expected nothing-to-do error")
	}
}

// TestSweepMatchesDirectRunner is the acceptance check for -sweep: the
// spec behind figure6 (via -spec-dump), run through the batch engine,
// must render byte-identically to the direct -fig runner.
func TestSweepMatchesDirectRunner(t *testing.T) {
	dir := t.TempDir()
	spath := filepath.Join(dir, "f6.json")

	var dump, errs bytes.Buffer
	if err := run([]string{"-short", "-spec-dump", "figure6"}, &dump, &errs); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spath, dump.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var direct bytes.Buffer
	if err := run([]string{"-short", "-fig", "figure6"}, &direct, &errs); err != nil {
		t.Fatal(err)
	}
	var swept bytes.Buffer
	if err := run([]string{"-short", "-sweep", spath}, &swept, &errs); err != nil {
		t.Fatal(err)
	}
	// The -fig loop prints a blank line after each table; -sweep doesn't.
	if got, want := swept.String()+"\n", direct.String(); got != want {
		t.Fatalf("sweep and direct outputs differ:\nsweep:\n%s\ndirect:\n%s", got, want)
	}
}

// TestSweepJournalResumeAndManifest drives the full CLI crash-recovery
// path: run with a journal, truncate it mid-row, resume, and check the
// journal is byte-identical to the clean one and the manifest records
// the resumed sweep.
func TestSweepJournalResumeAndManifest(t *testing.T) {
	dir := t.TempDir()
	spath := filepath.Join(dir, "f6.json")
	var dump, errs bytes.Buffer
	if err := run([]string{"-short", "-spec-dump", "figure6"}, &dump, &errs); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spath, dump.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	clean := filepath.Join(dir, "clean.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-short", "-sweep", spath, "-journal", clean}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	cleanBytes, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a kill: keep the header, three rows, and half a line.
	lines := bytes.SplitAfter(cleanBytes, []byte("\n"))
	journal := filepath.Join(dir, "killed.jsonl")
	killed := bytes.Join(lines[:4], nil)
	killed = append(killed, []byte(`{"seq":3,"ser`)...)
	if err := os.WriteFile(journal, killed, 0o644); err != nil {
		t.Fatal(err)
	}

	mpath := filepath.Join(dir, "run.json")
	out.Reset()
	if err := run([]string{"-short", "-sweep", spath, "-journal", journal, "-resume", "-manifest", mpath}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, cleanBytes) {
		t.Errorf("resumed journal differs from clean run")
	}

	m, err := obsv.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sweep == nil {
		t.Fatal("manifest has no sweep record")
	}
	if m.Sweep.Name != "figure6" || m.Sweep.Resumed != 3 || m.Sweep.Journal != journal {
		t.Errorf("sweep record %+v: want name=figure6 resumed=3 journal=%s", m.Sweep, journal)
	}
	if m.Sweep.Points != 10 { // 8 short-grid rates + 2 baseline points
		t.Errorf("sweep record points = %d, want 10", m.Sweep.Points)
	}
	if len(m.Artefacts) != 1 || m.Artefacts[0].ID != "figure6" {
		t.Errorf("manifest artefacts: %+v", m.Artefacts)
	}
}

func TestJournalWithoutSweepRejected(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-fig", "figure6", "-journal", "x.jsonl"}, &out, &errs); err == nil {
		t.Fatal("-journal without -sweep should fail")
	}
	if err := run([]string{"-sweep", "spec.json", "-resume"}, &out, &errs); err == nil {
		t.Fatal("-resume without -journal should fail")
	}
}
