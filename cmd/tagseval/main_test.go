package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-list"}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figure6", "figure12", "statespace", "tagged", "fairness"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in list:\n%s", want, out.String())
		}
	}
}

func TestRunOneFigureCSV(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-short", "-csv", "-fig", "statespace"}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "4331") {
		t.Fatalf("missing state count:\n%s", s)
	}
	if strings.Contains(s, "#") {
		t.Fatalf("CSV should drop comments:\n%s", s)
	}
}

func TestRunApproxTable(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-fig", "approx"}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "6.18") {
		t.Fatalf("missing balance timeout:\n%s", out.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-fig", "nope"}, &out, &errs); err == nil {
		t.Fatal("expected unknown-artefact error")
	}
}

func TestRunNoArgs(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run(nil, &out, &errs); err == nil {
		t.Fatal("expected nothing-to-do error")
	}
}
