package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pepatags/internal/exp"
	"pepatags/internal/obsv"
)

func TestRunList(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-list"}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figure6", "figure12", "statespace", "tagged", "fairness"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in list:\n%s", want, out.String())
		}
	}
}

func TestRunOneFigureCSV(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-short", "-csv", "-fig", "statespace"}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "4331") {
		t.Fatalf("missing state count:\n%s", s)
	}
	if strings.Contains(s, "#") {
		t.Fatalf("CSV should drop comments:\n%s", s)
	}
}

func TestRunApproxTable(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-fig", "approx"}, &out, &errs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "6.18") {
		t.Fatalf("missing balance timeout:\n%s", out.String())
	}
}

// TestManifestMatchesTableBitForBit is the acceptance check for the
// -manifest flag: the figure6 sweep (8 timeout rates in the short
// grid) is rendered once to stdout and once from the manifest's raw
// float64 series, and the two byte streams must be identical.
func TestManifestMatchesTableBitForBit(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "run.json")
	var out, errs bytes.Buffer
	if err := run([]string{"-short", "-fig", "figure6", "-manifest", mpath}, &out, &errs); err != nil {
		t.Fatal(err)
	}

	m, err := obsv.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "tagseval" || len(m.Artefacts) != 1 {
		t.Fatalf("bad manifest: tool=%q artefacts=%d", m.Tool, len(m.Artefacts))
	}
	rec := m.Artefacts[0]
	if rec.ID != "figure6" || rec.ElapsedSec <= 0 {
		t.Fatalf("bad artefact record: %+v", rec)
	}
	if len(rec.Series[0].X) < 3 {
		t.Fatalf("expected a sweep over >= 3 timeouts, got %d", len(rec.Series[0].X))
	}

	var fromManifest bytes.Buffer
	if err := exp.FigureFromArtefact(rec).Render(&fromManifest); err != nil {
		t.Fatal(err)
	}
	fromManifest.WriteByte('\n') // run() prints a blank line after each table
	if got, want := out.String(), fromManifest.String(); got != want {
		t.Fatalf("stdout and manifest-rendered table differ:\nstdout:\n%s\nmanifest:\n%s", got, want)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-fig", "nope"}, &out, &errs); err == nil {
		t.Fatal("expected unknown-artefact error")
	}
}

func TestRunNoArgs(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run(nil, &out, &errs); err == nil {
		t.Fatal("expected nothing-to-do error")
	}
}
