// tagseval regenerates the paper's numerical results: every figure of
// the evaluation section plus the state-space, approximation, fluid,
// burstiness, slowdown, multi-node, first-passage, Erlang-error,
// fairness and tagged-percentile tables.
//
// Usage:
//
//	tagseval -fig figure6            # one artefact
//	tagseval -all                    # everything
//	tagseval -all -short             # trimmed grids (fast)
//	tagseval -fig figure9 -csv       # CSV instead of a text table
//	tagseval -fig statespace -workers 8  # parallel PEPA derivation
//	tagseval -all -stats             # per-artefact wall time on stderr
//	tagseval -fig figure6 -manifest run.json  # machine-readable record
//	tagseval -all -debug-addr :6060  # pprof/expvar while the sweep runs
//
// Batch sweeps (docs/SWEEPS.md):
//
//	tagseval -spec-dump figure8 > f8.json     # the spec behind a figure
//	tagseval -sweep f8.json                   # run a spec file
//	tagseval -sweep f8.json -journal f8.jsonl # journal one row per point
//	tagseval -sweep f8.json -journal f8.jsonl -resume  # continue a killed run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"pepatags/internal/exp"
	"pepatags/internal/obsv"
	"pepatags/internal/sweep"
)

type runner func(exp.Params) (*exp.Figure, error)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("tagseval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		figName  = fs.String("fig", "", "artefact to run (see -list)")
		all      = fs.Bool("all", false, "run every artefact")
		list     = fs.Bool("list", false, "list available artefacts")
		short    = fs.Bool("short", false, "use trimmed parameter grids")
		csv      = fs.Bool("csv", false, "emit CSV instead of text tables")
		jobs     = fs.Int("jobs", 200000, "simulated jobs for the simulation tables")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		workers  = fs.Int("workers", 1, "worker goroutines for the PEPA-engine runners (-1 = one per CPU)")
		stats    = fs.Bool("stats", false, "print per-artefact wall time to stderr")
		manifest = fs.String("manifest", "", "write a JSON run manifest (one artefact record per figure/table) to this path")
		debug    = fs.String("debug-addr", "", "serve pprof/expvar/metrics/events on this address (e.g. :6060) for the duration of the run")
		progress = fs.Bool("progress", false, "print periodic progress lines (artefacts done, sweep points/sec, cache hit-rate) to stderr")
		progIv   = fs.Duration("progress-interval", obsv.DefaultHeartbeatInterval, "interval between -progress lines")
		events   = fs.String("events", "", "write JSON-lines structured events to this file")
		sweepArg = fs.String("sweep", "", "run a sweep spec file through the batch engine (see docs/SWEEPS.md)")
		specDump = fs.String("spec-dump", "", "print the sweep spec behind a built-in figure (figure6..figure12) as JSON and exit")
		journal  = fs.String("journal", "", "with -sweep: append one JSON row per completed point to this file")
		resume   = fs.Bool("resume", false, "with -sweep -journal: continue an interrupted journal instead of starting fresh")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	reg := obsv.NewRegistry()
	tele, err := obsv.StartTelemetry(obsv.TelemetryOptions{
		Registry:         reg,
		EventsPath:       *events,
		Progress:         *progress,
		ProgressInterval: *progIv,
		DebugAddr:        *debug,
		Stderr:           stderr,
		ForceLog:         *manifest != "",
	})
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tele.Fail("tagseval", err, *manifest, args)
		}
		tele.Close()
	}()

	runners := map[string]runner{
		"figure6":     exp.Figure6,
		"figure7":     exp.Figure7,
		"figure8":     exp.Figure8,
		"figure9":     exp.Figure9,
		"figure10":    exp.Figure10,
		"figure11":    exp.Figure11,
		"figure12":    exp.Figure12,
		"statespace":  exp.StateSpaceTable,
		"approx":      exp.ApproxTable,
		"fluid":       exp.FluidTable,
		"multinode":   exp.MultiNodeTable,
		"fairness":    exp.FairnessTable,
		"tagged":      exp.TaggedTable,
		"variants":    exp.VariantsTable,
		"sensitivity": exp.SensitivityTable,
		"passage":     exp.PassageTable,
		"bursty": func(p exp.Params) (*exp.Figure, error) {
			return exp.BurstyTable(p, *jobs, *seed)
		},
		"slowdown": func(p exp.Params) (*exp.Figure, error) {
			return exp.SlowdownTable(p, *jobs, *seed)
		},
		"erlangerror": func(p exp.Params) (*exp.Figure, error) {
			return exp.ErlangErrorTable(p, *jobs, *seed)
		},
	}
	available := sortedKeys(runners)

	if *list {
		fmt.Fprintln(stdout, strings.Join(available, "\n"))
		return nil
	}

	p := exp.DefaultParams()
	if *short {
		p = exp.ShortParams()
	}
	p.Workers = *workers

	if *specDump != "" {
		spec, err := exp.SweepSpec(*specDump, p)
		if err != nil {
			return fmt.Errorf("%w; sweep figures: %s", err, strings.Join(exp.SweepFigureIDs(), ", "))
		}
		b, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(b))
		return nil
	}
	if *sweepArg != "" {
		return runSweep(*sweepArg, p, reg, tele, *journal, *resume, *csv, *stats, *manifest, args, stdout, stderr)
	}
	if *resume || *journal != "" {
		return fmt.Errorf("-journal and -resume only apply to -sweep runs")
	}

	var names []string
	switch {
	case *all:
		names = available
	case *figName != "":
		if _, ok := runners[*figName]; !ok {
			return fmt.Errorf("unknown artefact %q; available: %s", *figName, strings.Join(available, ", "))
		}
		names = []string{*figName}
	default:
		return fmt.Errorf("nothing to do: pass -fig <name>, -all or -list")
	}

	tele.Heartbeat.SetTotal(float64(len(names)))
	var artefacts []obsv.ArtefactRecord
	for i, n := range names {
		start := time.Now()
		f, err := runners[n](p)
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		elapsed := time.Since(start)
		tele.Log.Emit(obsv.LevelInfo, "eval.artefact", n, map[string]float64{
			"elapsed_s": elapsed.Seconds(), "done": float64(i + 1), "total": float64(len(names)),
		})
		tele.Heartbeat.ObserveProgress(obsv.Progress{Phase: "eval", Step: i + 1, Count: i + 1})
		if *stats {
			fmt.Fprintf(stderr, "%s: %v (workers=%d)\n", n, elapsed.Round(time.Millisecond), *workers)
		}
		if *manifest != "" {
			artefacts = append(artefacts, f.Artefact(elapsed))
		}
		var werr error
		if *csv {
			werr = f.CSV(stdout)
		} else {
			werr = f.Render(stdout)
		}
		if werr != nil {
			return fmt.Errorf("%s: %w", n, werr)
		}
		fmt.Fprintln(stdout)
	}
	if *manifest != "" {
		m := obsv.NewManifest("tagseval")
		m.Args = args
		m.Params = map[string]any{"short": *short, "jobs": *jobs, "csv": *csv}
		m.Seed = *seed
		m.Workers = *workers
		m.Artefacts = artefacts
		m.Events = tele.Record()
		if err := m.WriteFile(*manifest); err != nil {
			return err
		}
	}
	return nil
}

// runSweep executes a spec file through the batch engine: journal and
// resume handling, figure assembly when the spec has a figure section
// (raw JSON rows otherwise), and the manifest's sweep record.
func runSweep(path string, p exp.Params, reg *obsv.Registry, tele *obsv.RunTelemetry, journal string, resume bool, csv, stats bool, manifestPath string, args []string, stdout, stderr io.Writer) error {
	if resume && journal == "" {
		return fmt.Errorf("-resume needs -journal (the journal is what is resumed)")
	}
	spec, err := sweep.ReadSpec(path)
	if err != nil {
		return err
	}
	span := obsv.NewSpan("sweep")
	res, err := sweep.Run(spec, sweep.Options{
		Workers:  p.Workers,
		Journal:  journal,
		Resume:   resume,
		Registry: reg,
		Span:     span,
		Events:   tele.Log,
		Progress: tele.Heartbeat.ObserveProgress,
	})
	span.End()
	if err != nil {
		return err
	}
	if stats {
		fmt.Fprintf(stderr, "sweep %s: %d points (%d resumed), cache %d hits / %d misses, %v (workers=%d)\n",
			spec.Name, len(res.Rows), res.Resumed, res.CacheHits, res.CacheMisses,
			res.Elapsed.Round(time.Millisecond), p.Workers)
	}

	var artefacts []obsv.ArtefactRecord
	if spec.Figure != nil {
		tbl, err := sweep.Assemble(spec, res)
		if err != nil {
			return err
		}
		f := exp.FigureFromTable(tbl)
		if manifestPath != "" {
			artefacts = append(artefacts, f.Artefact(res.Elapsed))
		}
		if csv {
			err = f.CSV(stdout)
		} else {
			err = f.Render(stdout)
		}
		if err != nil {
			return err
		}
	} else {
		// No figure section: emit the result rows as JSON lines.
		enc := json.NewEncoder(stdout)
		for _, r := range res.Rows {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
	}

	if manifestPath != "" {
		m := obsv.NewManifest("tagseval")
		m.Args = args
		m.Params = map[string]any{"spec": path, "csv": csv}
		m.Workers = p.Workers
		m.Artefacts = artefacts
		m.Metrics = reg.Snapshot()
		rec := span.Record()
		m.Trace = &rec
		m.Sweep = &obsv.SweepRecord{
			Name:        spec.Name,
			SpecSHA256:  res.SpecHash,
			Points:      len(res.Points),
			Resumed:     res.Resumed,
			Journal:     journal,
			Workers:     p.Workers,
			CacheHits:   res.CacheHits,
			CacheMisses: res.CacheMisses,
			ElapsedSec:  res.Elapsed.Seconds(),
		}
		m.Events = tele.Record()
		if err := m.WriteFile(manifestPath); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]runner) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
