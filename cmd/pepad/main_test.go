package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pepatags/internal/obsv"
)

// startDaemon runs the daemon on an ephemeral port and returns its
// base URL, a stop function (sends the signal and waits for a clean
// exit), and the stderr transcript.
func startDaemon(t *testing.T, extra ...string) (url string, stop func() error, errBuf *bytes.Buffer) {
	t.Helper()
	errBuf = &bytes.Buffer{}
	addrs := make(chan net.Addr, 1)
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() {
		done <- run(args, errBuf, func(a net.Addr) { addrs <- a }, sig)
	}()
	select {
	case a := <-addrs:
		url = "http://" + a.String()
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v\n%s", err, errBuf)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}
	stop = func() error {
		sig <- os.Interrupt
		select {
		case err := <-done:
			return err
		case <-time.After(60 * time.Second):
			t.Fatal("daemon never exited after the stop signal")
			return nil
		}
	}
	return url, stop, errBuf
}

const smokeSpec = `{"spec":{
  "schema": "pepatags/sweep-spec/v1",
  "name": "pepad-smoke",
  "groups": [{
    "point": {"series": "tag", "model": "tagexp", "lambda": 5, "n": 2, "k1": 3, "k2": 3,
              "service": {"kind": "exp", "mu": 10}},
    "axes": [{"field": "t", "values": [2, 6, 10]}]
  }]
}}`

// TestDaemonSubmitPollShutdown: the full lifecycle through the real
// binary entrypoint — listen on an ephemeral port, submit over HTTP,
// poll to completion, write a manifest, drain on signal.
func TestDaemonSubmitPollShutdown(t *testing.T) {
	dir := t.TempDir()
	url, stop, errBuf := startDaemon(t, "-workers", "2", "-manifest-dir", dir)

	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var sub struct {
		Job struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(60 * time.Second)
	state := ""
	for time.Now().Before(deadline) && state != "done" {
		r, err := http.Get(url + "/v1/jobs/" + sub.Job.ID)
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		json.NewDecoder(r.Body).Decode(&v)
		r.Body.Close()
		if v.State == "failed" {
			t.Fatalf("job failed: %s", v.Error)
		}
		state = v.State
		time.Sleep(5 * time.Millisecond)
	}
	if state != "done" {
		t.Fatalf("job stuck in %q", state)
	}

	if err := stop(); err != nil {
		t.Fatalf("drain: %v\n%s", err, errBuf)
	}
	if !strings.Contains(errBuf.String(), "drained cleanly") {
		t.Errorf("stderr transcript missing clean drain:\n%s", errBuf)
	}
	// The daemon is gone.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("daemon still serving after drain")
	}
	// The job manifest was written and validates.
	m, err := obsv.ReadManifest(filepath.Join(dir, sub.Job.ID+".json"))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("manifest invalid: %v", err)
	}
	if m.Tool != "pepad" {
		t.Errorf("manifest tool %q", m.Tool)
	}
}

// TestDaemonEventsSink: -events writes server JSON-lines events.
func TestDaemonEventsSink(t *testing.T) {
	dir := t.TempDir()
	sink := filepath.Join(dir, "events.jsonl")
	url, stop, _ := startDaemon(t, "-events", sink)
	if r, err := http.Get(url + "/healthz"); err == nil {
		r.Body.Close()
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	data, err := os.ReadFile(sink)
	if err != nil {
		t.Fatalf("events sink: %v", err)
	}
	if !strings.Contains(string(data), "serve.listen") {
		t.Errorf("events sink misses serve.listen:\n%s", data)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev obsv.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("sink line %q: %v", line, err)
		}
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &buf, nil, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, &buf, nil, nil); err == nil {
		t.Error("unlistenable address accepted")
	}
	// Fail fast on an uncreatable manifest dir.
	f := filepath.Join(t.TempDir(), "file")
	os.WriteFile(f, nil, 0o644)
	if err := run([]string{"-manifest-dir", filepath.Join(f, "sub")}, &buf, nil, nil); err == nil {
		t.Error("manifest dir under a file accepted")
	}
}
