// pepad is the persistent model-evaluation daemon: an HTTP/JSON
// service that accepts sweep specs (pepatags/sweep-spec/v1, the same
// documents tagseval -sweep runs), executes them on a bounded worker
// pool over a shared content-addressed state-space cache, streams
// per-job progress over SSE/long-poll, and applies threshold
// admission control to its own overload — the repo's theory, dogfooded.
// The HTTP API is documented in docs/PEPAD.md.
//
// Usage:
//
//	pepad                                  # listen on 127.0.0.1:8700
//	pepad -addr :9000 -workers 4           # all interfaces, 4 solve workers
//	pepad -admit-bound 30                  # reject above ~30s of queued work
//	pepad -manifest-dir runs/              # one run manifest per job
//	pepad -events pepad.jsonl              # server event log to a file
//
// A SIGINT/SIGTERM drains: no new submissions (503 + Retry-After),
// queued and running jobs finish, then the process exits. Jobs still
// unfinished at -drain-timeout are canceled and leave failure
// manifests.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"pepatags/internal/obsv"
	"pepatags/internal/serve"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stderr, nil, stop); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives on stop or
// the listener fails. ready, when non-nil, is called once with the
// bound address (tests listen on port 0).
func run(args []string, stderr io.Writer, ready func(net.Addr), stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("pepad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8700", "listen address")
		jobWorkers  = fs.Int("job-workers", 1, "jobs run concurrently")
		workers     = fs.Int("workers", -1, "solve pool size per job (-1 = one per CPU)")
		queue       = fs.Int("queue", 64, "admitted-job queue depth")
		admitBound  = fs.Float64("admit-bound", 0, "admission threshold in estimated seconds of queued work (0 = admit everything)")
		seedPoint   = fs.Float64("seed-point-cost", 0, "estimator seed: seconds per cached-shape point (0 = measured default)")
		seedShape   = fs.Float64("seed-shape-cost", 0, "estimator seed: seconds per state-space derivation (0 = measured default)")
		manifestDir = fs.String("manifest-dir", "", "write one run manifest per finished job into this directory")
		eventsPath  = fs.String("events", "", "write server JSON-lines events to this file")
		drain       = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before unfinished jobs are canceled")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *manifestDir != "" {
		if err := os.MkdirAll(*manifestDir, 0o755); err != nil {
			return fmt.Errorf("pepad: manifest dir: %w", err)
		}
	}

	logCfg := obsv.EventLogConfig{}
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			return fmt.Errorf("pepad: events sink: %w", err)
		}
		defer f.Close()
		logCfg.Sink = f
	}
	log := obsv.NewEventLog(logCfg)

	srv := serve.New(serve.Config{
		JobWorkers:       *jobWorkers,
		SolveWorkers:     *workers,
		QueueDepth:       *queue,
		AdmissionBound:   *admitBound,
		SeedPointSeconds: *seedPoint,
		SeedShapeSeconds: *seedShape,
		ManifestDir:      *manifestDir,
		Log:              log,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("pepad: listen: %w", err)
	}
	fmt.Fprintf(stderr, "pepad: listening on %s\n", ln.Addr())
	log.Infof("serve.listen", "listening on %s", ln.Addr())
	if ready != nil {
		ready(ln.Addr())
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Shutdown(context.Background())
		return fmt.Errorf("pepad: serve: %w", err)
	case <-stop:
	}

	// Drain jobs first (the API stays up so clients can collect
	// results and watch event streams end), then close the listener.
	fmt.Fprintf(stderr, "pepad: draining (timeout %v)\n", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := srv.Shutdown(ctx)

	hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil {
		hs.Close()
	}
	<-serveErr // always http.ErrServerClosed after Shutdown/Close
	if drainErr != nil {
		return fmt.Errorf("pepad: %w", drainErr)
	}
	fmt.Fprintln(stderr, "pepad: drained cleanly")
	return nil
}
