package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBuiltinTAG(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-tag"}, strings.NewReader(""), &out, &errs); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errs.String())
	}
	s := out.String()
	if !strings.Contains(s, "states: 4331") {
		t.Fatalf("missing state count:\n%s", s)
	}
	if !strings.Contains(s, "service1") || !strings.Contains(s, "timeout") {
		t.Fatalf("missing throughputs:\n%s", s)
	}
}

func TestRunFromStdin(t *testing.T) {
	src := `
	P = (a, 2).P1;
	P1 = (b, 3).P;
	P
	`
	var out, errs bytes.Buffer
	if err := run([]string{"-states", "-lump", "-echo", "-"}, strings.NewReader(src), &out, &errs); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"states: 2", "stationary distribution", "lumped quotient", "P = (a, 2).P1;"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRunParseError(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-"}, strings.NewReader("garbage @@"), &out, &errs); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestRunUsage(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out, &errs); err == nil {
		t.Fatal("expected usage error")
	}
}

func TestRunMaxStatesCap(t *testing.T) {
	var out, errs bytes.Buffer
	err := run([]string{"-max-states", "2", "-tag"}, strings.NewReader(""), &out, &errs)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("expected overflow error, got %v", err)
	}
}

func TestRunLevelMeasure(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-level", "1:QA", "-tag"}, strings.NewReader(""), &out, &errs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mean level of leaf 1 (QA*)") {
		t.Fatalf("missing level output:\n%s", out.String())
	}
	if err := run([]string{"-level", "zz", "-tag"}, strings.NewReader(""), &out, &errs); err == nil {
		t.Fatal("bad level spec must fail")
	}
}
