package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pepatags/internal/obsv"
)

func TestRunBuiltinTAG(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-tag"}, strings.NewReader(""), &out, &errs); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errs.String())
	}
	s := out.String()
	if !strings.Contains(s, "states: 4331") {
		t.Fatalf("missing state count:\n%s", s)
	}
	if !strings.Contains(s, "service1") || !strings.Contains(s, "timeout") {
		t.Fatalf("missing throughputs:\n%s", s)
	}
}

func TestRunFromStdin(t *testing.T) {
	src := `
	P = (a, 2).P1;
	P1 = (b, 3).P;
	P
	`
	var out, errs bytes.Buffer
	if err := run([]string{"-states", "-lump", "-echo", "-"}, strings.NewReader(src), &out, &errs); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"states: 2", "stationary distribution", "lumped quotient", "P = (a, 2).P1;"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRunParseError(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-"}, strings.NewReader("garbage @@"), &out, &errs); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestRunUsage(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out, &errs); err == nil {
		t.Fatal("expected usage error")
	}
}

func TestRunMaxStatesCap(t *testing.T) {
	var out, errs bytes.Buffer
	err := run([]string{"-max-states", "2", "-tag"}, strings.NewReader(""), &out, &errs)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("expected overflow error, got %v", err)
	}
}

func TestRunManifestAndTrace(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "run.json")
	tpath := filepath.Join(dir, "trace.json")
	var out, errs bytes.Buffer
	args := []string{"-tag", "-stats", "-manifest", mpath, "-trace", tpath}
	if err := run(args, strings.NewReader(""), &out, &errs); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errs.String())
	}

	m, err := obsv.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "pepa" || m.Model != "builtin:tag" || m.Solver != "auto" {
		t.Fatalf("bad manifest header: %+v", m)
	}
	if m.Derive == nil || m.Derive.States != 4331 || m.Derive.Transitions != 16695 {
		t.Fatalf("bad derive stats: %+v", m.Derive)
	}
	if m.Solve == nil || !m.Solve.Converged {
		t.Fatalf("bad solve stats: %+v", m.Solve)
	}
	if m.Trace == nil || m.Trace.Name != "pepa" {
		t.Fatalf("missing trace record: %+v", m.Trace)
	}
	// Each measure must be the exact float64 behind the printed line.
	for _, a := range []string{"service1", "timeout", "arrival"} {
		x, ok := m.Measures["throughput."+a]
		if !ok {
			t.Fatalf("measure throughput.%s missing; have %v", a, m.Measures)
		}
		line := fmt.Sprintf("  %-16s %.8g\n", a, x)
		if !strings.Contains(out.String(), line) {
			t.Fatalf("manifest measure %q does not reproduce the stdout line %q:\n%s", a, line, out.String())
		}
	}
	if len(m.Metrics) == 0 {
		t.Fatal("manifest has no metrics snapshot")
	}

	// The Chrome trace must be a JSON array covering the pipeline spans.
	b, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range events {
		seen[e["name"].(string)] = true
	}
	for _, want := range []string{"pepa", "parse", "derive", "compile", "explore", "solve", "measures"} {
		if !seen[want] {
			t.Fatalf("trace missing span %q; have %v", want, seen)
		}
	}

	// -stats renders the same tree on stderr.
	for _, want := range []string{"pepa", "derive", "explore", "solve"} {
		if !strings.Contains(errs.String(), want) {
			t.Fatalf("span tree missing %q on stderr:\n%s", want, errs.String())
		}
	}
}

func TestRunDebugAddr(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-debug-addr", "127.0.0.1:0", "-tag"}, strings.NewReader(""), &out, &errs); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(errs.String(), "debug endpoint on http://127.0.0.1:") {
		t.Fatalf("missing debug-endpoint banner:\n%s", errs.String())
	}
}

func TestRunLintMode(t *testing.T) {
	// A clean model lints quietly and never derives.
	var out, errs bytes.Buffer
	if err := run([]string{"-lint", "-tag"}, strings.NewReader(""), &out, &errs); err != nil {
		t.Fatalf("lint of builtin model: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "states:") {
		t.Fatalf("-lint must not derive:\n%s", out.String())
	}

	// A dead sync is an error-severity finding: non-nil error, text
	// diagnostics on stdout.
	bad := "P = (a, 1).P1;\nP1 = (sync, 1).P1;\nQ = (sync2, 1).Q;\nP <sync, sync2> Q"
	out.Reset()
	if err := run([]string{"-lint", "-"}, strings.NewReader(bad), &out, &errs); err == nil {
		t.Fatalf("lint accepted a dead sync:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "error[dead-sync]") {
		t.Fatalf("missing dead-sync diagnostic:\n%s", out.String())
	}
}

func TestRunLintJSONManifest(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "lint.json")
	bad := "P = (a, 1).P1;\nP1 = (sync, 1).P1;\nQ = (sync2, 1).Q;\nP <sync, sync2> Q"
	var out, errs bytes.Buffer
	args := []string{"-lint", "-json", "-manifest", mpath, "-"}
	if err := run(args, strings.NewReader(bad), &out, &errs); err == nil {
		t.Fatal("expected lint failure")
	}
	var rep map[string]any
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out.String())
	}
	if rep["schema"] != "pepatags/pepalint/v1" {
		t.Fatalf("report schema %v", rep["schema"])
	}
	m, err := obsv.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lint == nil || m.Lint.Errors == 0 || len(m.Lint.Diags) == 0 {
		t.Fatalf("manifest lint record %+v", m.Lint)
	}
	found := false
	for _, d := range m.Lint.Diags {
		if d.Rule == "dead-sync" && d.Severity == "error" && d.Line == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no positioned dead-sync diag in manifest: %+v", m.Lint.Diags)
	}
}

func TestRunLevelMeasure(t *testing.T) {
	var out, errs bytes.Buffer
	if err := run([]string{"-level", "1:QA", "-tag"}, strings.NewReader(""), &out, &errs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mean level of leaf 1 (QA*)") {
		t.Fatalf("missing level output:\n%s", out.String())
	}
	if err := run([]string{"-level", "zz", "-tag"}, strings.NewReader(""), &out, &errs); err == nil {
		t.Fatal("bad level spec must fail")
	}
}

// TestRunFailureManifest is the issue's "intentionally failed run"
// acceptance case: a derivation that blows the -max-states cap must
// still leave a manifest carrying the error and the flight-recorder
// tail, and the recorder dump must land on stderr.
func TestRunFailureManifest(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "fail.json")
	var out, errs bytes.Buffer
	args := []string{"-tag", "-max-states", "3", "-manifest", mpath}
	if err := run(args, strings.NewReader(""), &out, &errs); err == nil {
		t.Fatal("expected max-states failure")
	}
	m, err := obsv.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Error == "" || !strings.Contains(m.Error, "state space exceeds") {
		t.Fatalf("failure manifest error %q", m.Error)
	}
	if m.Events == nil || len(m.Events.Recorder) == 0 {
		t.Fatalf("failure manifest has no flight recorder: %+v", m.Events)
	}
	kinds := make(map[string]int)
	for _, ev := range m.Events.Recorder {
		kinds[ev.Kind]++
	}
	if kinds["derive.error"] == 0 || kinds["pepa.fail"] == 0 {
		t.Fatalf("recorder kinds %v", kinds)
	}
	if !strings.Contains(errs.String(), "flight recorder") {
		t.Fatalf("no recorder dump on stderr:\n%s", errs.String())
	}
}

// TestRunEventsAndProgress checks the -events JSON-lines sink and the
// -progress heartbeat on a successful run.
func TestRunEventsAndProgress(t *testing.T) {
	epath := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errs bytes.Buffer
	args := []string{"-tag", "-events", epath, "-progress"}
	if err := run(args, strings.NewReader(""), &out, &errs); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errs.String())
	}
	b, err := os.ReadFile(epath)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	var lastSeq uint64
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		var ev obsv.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("event seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		kinds[ev.Kind]++
	}
	for _, want := range []string{"derive.start", "derive.done", "solve.done", "heartbeat.final"} {
		if kinds[want] == 0 {
			t.Fatalf("missing %q in event sink: %v", want, kinds)
		}
	}
	if !strings.Contains(errs.String(), "progress: phase=") {
		t.Fatalf("no heartbeat line on stderr:\n%s", errs.String())
	}
}
