// pepa derives and solves a PEPA model: it parses a specification in
// Workbench-like syntax, derives the reachable CTMC, solves for the
// stationary distribution, and prints state counts, action
// throughputs and (optionally) the per-state probabilities.
//
// Usage:
//
//	pepa model.pepa
//	pepa -states model.pepa        # also dump the stationary vector
//	pepa -tag                      # solve the built-in Figure 3 model
//	pepa -lump model.pepa          # report the lumped quotient size
//	pepa -workers 8 model.pepa     # parallel derivation + parallel solver
//	pepa -solver power model.pepa  # force a solver: auto|gth|power|gs|jacobi
//	pepa -stats model.pepa         # derivation/solver statistics on stderr
//	echo '...' | pepa -            # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"pepatags/internal/core"
	"pepatags/internal/ctmc"
	"pepatags/internal/linalg"
	"pepatags/internal/obsv"
	"pepatags/internal/pepa"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pepa", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dumpStates = fs.Bool("states", false, "print the full stationary vector")
		maxStates  = fs.Int("max-states", pepa.DefaultMaxStates, "state-space cap")
		tag        = fs.Bool("tag", false, "use the built-in Figure 3 TAG model (lambda=5, mu=10, t=42, n=6, K=10)")
		lump       = fs.Bool("lump", false, "report the exactly-lumped quotient size")
		echo       = fs.Bool("echo", false, "pretty-print the parsed model before solving")
		level      = fs.String("level", "", "report E[level] of a leaf: <leafIndex>:<derivativePrefix>, e.g. 1:QA")
		workers    = fs.Int("workers", 1, "worker goroutines for derivation and the row-partitioned solvers (-1 = one per CPU)")
		stats      = fs.Bool("stats", false, "print derivation and solver statistics to stderr")
		solver     = fs.String("solver", "auto", "steady-state solver: auto, gth, power, gs (Gauss-Seidel), jacobi")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	var src []byte
	var err error
	switch {
	case *tag:
		src = []byte(core.NewTAGExp(5, 10, 42, 6, 10, 10).PEPASource())
	case fs.NArg() == 1 && fs.Arg(0) == "-":
		src, err = io.ReadAll(stdin)
	case fs.NArg() == 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		return fmt.Errorf("usage: pepa [-states] [-lump] [-echo] [-tag] [-workers n] [-solver s] [-stats] <model.pepa | ->")
	}
	if err != nil {
		return err
	}

	model, err := pepa.Parse(string(src))
	if err != nil {
		return err
	}
	if *echo {
		fmt.Fprint(stdout, model.Source())
	}
	if err := model.CheckCyclic(); err != nil {
		fmt.Fprintf(stderr, "warning: %v\n", err)
	}
	dopts := pepa.DeriveOptions{MaxStates: *maxStates, Workers: *workers}
	var dstats obsv.DeriveStats
	if *stats {
		dopts.Stats = &dstats
	}
	ss, err := pepa.Derive(model, dopts)
	if *stats && dstats.States > 0 {
		fmt.Fprintln(stderr, dstats.String())
	}
	if err != nil {
		return err
	}
	c := ss.Chain
	fmt.Fprintf(stdout, "states: %d\ntransitions: %d\nsequential components: %d\n",
		c.NumStates(), c.NumTransitions(), ss.NumLeaf)
	if err := c.CheckIrreducible(); err != nil {
		fmt.Fprintf(stderr, "warning: %v\n", err)
	}
	pi, err := solveSteady(c, *solver, *workers, *stats, stderr)
	if err != nil {
		return err
	}
	if *lump {
		if _, q, err := c.Lump(make(ctmc.Partition, c.NumStates())); err == nil {
			fmt.Fprintf(stdout, "lumped quotient: %d states\n", q.NumStates())
		} else {
			fmt.Fprintf(stderr, "lumping failed: %v\n", err)
		}
	}
	if *level != "" {
		var leaf int
		var prefix string
		if _, err := fmt.Sscanf(*level, "%d:%s", &leaf, &prefix); err != nil {
			return fmt.Errorf("bad -level %q (want leaf:prefix): %w", *level, err)
		}
		l, err := ss.LevelExpectation(pi, leaf, prefix)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "mean level of leaf %d (%s*): %.8g\n", leaf, prefix, l)
	}
	fmt.Fprintln(stdout, "action throughputs:")
	for _, a := range c.Actions() {
		fmt.Fprintf(stdout, "  %-16s %.8g\n", a, c.ActionThroughput(pi, a))
	}
	if *dumpStates {
		fmt.Fprintln(stdout, "stationary distribution:")
		for i := 0; i < c.NumStates(); i++ {
			fmt.Fprintf(stdout, "  %.10g  %s\n", pi[i], c.Label(i))
		}
	}
	return nil
}

// solveSteady dispatches on the -solver flag. See the "Choosing a
// solver" section of README.md for when each wins.
func solveSteady(c *ctmc.Chain, solver string, workers int, stats bool, stderr io.Writer) ([]float64, error) {
	if solver == "auto" && !stats && workers <= 1 {
		return c.SteadyState()
	}
	opts := linalg.Options{Workers: workers}
	var sstats obsv.SolveStats
	if stats {
		opts.Stats = &sstats
		defer func() {
			if sstats.Solver != "" {
				fmt.Fprintln(stderr, sstats.String())
			}
		}()
	}
	q := c.Generator()
	switch solver {
	case "auto":
		// The automatic choice, but honouring -workers and -stats:
		// GTH on small chains, iterative beyond.
		if q.Rows <= 400 {
			if pi, err := linalg.SteadyStateGTH(q.ToDense()); err == nil {
				return pi, nil
			}
		}
		if pi, err := linalg.SteadyStateGaussSeidel(q, opts); err == nil {
			return pi, nil
		}
		return linalg.SteadyStatePower(q, opts)
	case "gth":
		return linalg.SteadyStateGTH(q.ToDense())
	case "power":
		return linalg.SteadyStatePower(q, opts)
	case "gs":
		return linalg.SteadyStateGaussSeidel(q, opts)
	case "jacobi":
		return linalg.SteadyStateJacobi(q, opts)
	default:
		return nil, fmt.Errorf("unknown -solver %q (want auto, gth, power, gs or jacobi)", solver)
	}
}
