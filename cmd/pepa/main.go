// pepa derives and solves a PEPA model: it parses a specification in
// Workbench-like syntax, derives the reachable CTMC, solves for the
// stationary distribution, and prints state counts, action
// throughputs and (optionally) the per-state probabilities.
//
// Usage:
//
//	pepa model.pepa
//	pepa -states model.pepa        # also dump the stationary vector
//	pepa -tag                      # solve the built-in Figure 3 model
//	pepa -lump model.pepa          # report the lumped quotient size
//	echo '...' | pepa -            # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pepatags/internal/core"
	"pepatags/internal/ctmc"
	"pepatags/internal/pepa"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pepa", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dumpStates = fs.Bool("states", false, "print the full stationary vector")
		maxStates  = fs.Int("max-states", pepa.DefaultMaxStates, "state-space cap")
		tag        = fs.Bool("tag", false, "use the built-in Figure 3 TAG model (lambda=5, mu=10, t=42, n=6, K=10)")
		lump       = fs.Bool("lump", false, "report the exactly-lumped quotient size")
		echo       = fs.Bool("echo", false, "pretty-print the parsed model before solving")
		level      = fs.String("level", "", "report E[level] of a leaf: <leafIndex>:<derivativePrefix>, e.g. 1:QA")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src []byte
	var err error
	switch {
	case *tag:
		src = []byte(core.NewTAGExp(5, 10, 42, 6, 10, 10).PEPASource())
	case fs.NArg() == 1 && fs.Arg(0) == "-":
		src, err = io.ReadAll(stdin)
	case fs.NArg() == 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		return fmt.Errorf("usage: pepa [-states] [-lump] [-echo] [-tag] <model.pepa | ->")
	}
	if err != nil {
		return err
	}

	model, err := pepa.Parse(string(src))
	if err != nil {
		return err
	}
	if *echo {
		fmt.Fprint(stdout, model.Source())
	}
	if err := model.CheckCyclic(); err != nil {
		fmt.Fprintf(stderr, "warning: %v\n", err)
	}
	ss, err := pepa.Derive(model, pepa.DeriveOptions{MaxStates: *maxStates})
	if err != nil {
		return err
	}
	c := ss.Chain
	fmt.Fprintf(stdout, "states: %d\ntransitions: %d\nsequential components: %d\n",
		c.NumStates(), c.NumTransitions(), ss.NumLeaf)
	if err := c.CheckIrreducible(); err != nil {
		fmt.Fprintf(stderr, "warning: %v\n", err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		return err
	}
	if *lump {
		if _, q, err := c.Lump(make(ctmc.Partition, c.NumStates())); err == nil {
			fmt.Fprintf(stdout, "lumped quotient: %d states\n", q.NumStates())
		} else {
			fmt.Fprintf(stderr, "lumping failed: %v\n", err)
		}
	}
	if *level != "" {
		var leaf int
		var prefix string
		if _, err := fmt.Sscanf(*level, "%d:%s", &leaf, &prefix); err != nil {
			return fmt.Errorf("bad -level %q (want leaf:prefix): %w", *level, err)
		}
		l, err := ss.LevelExpectation(pi, leaf, prefix)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "mean level of leaf %d (%s*): %.8g\n", leaf, prefix, l)
	}
	fmt.Fprintln(stdout, "action throughputs:")
	for _, a := range c.Actions() {
		fmt.Fprintf(stdout, "  %-16s %.8g\n", a, c.ActionThroughput(pi, a))
	}
	if *dumpStates {
		fmt.Fprintln(stdout, "stationary distribution:")
		for i := 0; i < c.NumStates(); i++ {
			fmt.Fprintf(stdout, "  %.10g  %s\n", pi[i], c.Label(i))
		}
	}
	return nil
}
