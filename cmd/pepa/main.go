// pepa derives and solves a PEPA model: it parses a specification in
// Workbench-like syntax, derives the reachable CTMC, solves for the
// stationary distribution, and prints state counts, action
// throughputs and (optionally) the per-state probabilities.
//
// Usage:
//
//	pepa model.pepa
//	pepa -states model.pepa        # also dump the stationary vector
//	pepa -tag                      # solve the built-in Figure 3 model
//	pepa -lint model.pepa          # static checks only, no derivation
//	pepa -lint -json model.pepa    # ... as a pepatags/pepalint/v1 report
//	pepa -lump model.pepa          # report the lumped quotient size
//	pepa -workers 8 model.pepa     # parallel derivation + parallel solver
//	pepa -solver power model.pepa  # force a solver: auto|gth|power|gs|jacobi
//	pepa -stats model.pepa         # derivation/solver statistics on stderr
//	pepa -manifest run.json ...    # machine-readable run record
//	pepa -trace trace.json ...     # Chrome trace of the pipeline spans
//	pepa -debug-addr :6060 ...     # pprof/expvar/metrics/events HTTP endpoint
//	pepa -progress ...             # periodic progress lines on stderr
//	pepa -events run.jsonl ...     # JSON-lines structured event log
//	echo '...' | pepa -            # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"pepatags/internal/core"
	"pepatags/internal/ctmc"
	"pepatags/internal/linalg"
	"pepatags/internal/obsv"
	"pepatags/internal/pepa"
	"pepatags/internal/pepa/analysis"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("pepa", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dumpStates = fs.Bool("states", false, "print the full stationary vector")
		maxStates  = fs.Int("max-states", pepa.DefaultMaxStates, "state-space cap")
		tag        = fs.Bool("tag", false, "use the built-in Figure 3 TAG model (lambda=5, mu=10, t=42, n=6, K=10)")
		lump       = fs.Bool("lump", false, "report the exactly-lumped quotient size")
		lintOnly   = fs.Bool("lint", false, "run the static checks and stop without deriving")
		jsonOut    = fs.Bool("json", false, "with -lint, emit a pepatags/pepalint/v1 JSON report")
		echo       = fs.Bool("echo", false, "pretty-print the parsed model before solving")
		level      = fs.String("level", "", "report E[level] of a leaf: <leafIndex>:<derivativePrefix>, e.g. 1:QA")
		workers    = fs.Int("workers", 1, "worker goroutines for derivation and the row-partitioned solvers (-1 = one per CPU)")
		stats      = fs.Bool("stats", false, "print derivation/solver statistics and the pipeline span tree to stderr")
		solver     = fs.String("solver", "auto", "steady-state solver: auto, gth, power, gs (Gauss-Seidel), jacobi")
		manifest   = fs.String("manifest", "", "write a JSON run manifest to this path")
		tracePath  = fs.String("trace", "", "write a Chrome trace-event JSON of the pipeline spans to this path")
		debugAddr  = fs.String("debug-addr", "", "serve pprof/expvar/metrics/events on this address (e.g. :6060) for the duration of the run")
		events     = fs.String("events", "", "write JSON-lines structured events to this file")
		progress   = fs.Bool("progress", false, "print periodic progress lines (states/sec, frontier, residual) to stderr")
		progressIv = fs.Duration("progress-interval", obsv.DefaultHeartbeatInterval, "interval between -progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	// Observability plumbing. The registry and span tree are cheap, so
	// they are always on; the flags only control where they end up.
	reg := obsv.NewRegistry()
	instrumented := *manifest != "" || *tracePath != "" || *stats
	root := obsv.NewSpan("pepa")
	defer root.End()
	tele, err := obsv.StartTelemetry(obsv.TelemetryOptions{
		Registry:         reg,
		EventsPath:       *events,
		Progress:         *progress,
		ProgressInterval: *progressIv,
		DebugAddr:        *debugAddr,
		Stderr:           stderr,
		ForceLog:         *manifest != "",
	})
	if err != nil {
		return err
	}
	// On failure, dump the flight recorder and persist it (with the
	// error) into the manifest, so a dead run still leaves a record.
	failManifest := *manifest
	defer func() {
		if err != nil {
			tele.Fail("pepa", err, failManifest, args)
		}
		tele.Close()
	}()

	var src []byte
	modelName := ""
	switch {
	case *tag:
		src = []byte(core.NewTAGExp(5, 10, 42, 6, 10, 10).PEPASource())
		modelName = "builtin:tag"
	case fs.NArg() == 1 && fs.Arg(0) == "-":
		src, err = io.ReadAll(stdin)
		modelName = "stdin"
	case fs.NArg() == 1:
		src, err = os.ReadFile(fs.Arg(0))
		modelName = fs.Arg(0)
	default:
		return fmt.Errorf("usage: pepa [-lint [-json]] [-states] [-lump] [-echo] [-tag] [-workers n] [-solver s] [-stats] [-manifest f] [-trace f] [-debug-addr a] [-events f] [-progress] <model.pepa | ->")
	}
	if err != nil {
		return err
	}

	if *lintOnly {
		// runLint writes its own manifest carrying the findings; a lint
		// failure must not clobber it with a bare failure manifest.
		failManifest = ""
		return runLint(modelName, string(src), *jsonOut, *manifest, args, stdout)
	}

	parseSpan := root.Child("parse")
	model, err := pepa.ParseFile(modelName, string(src))
	parseSpan.End()
	if err != nil {
		return err
	}
	if *echo {
		fmt.Fprint(stdout, model.Source())
	}
	if err := model.CheckCyclic(); err != nil {
		fmt.Fprintf(stderr, "warning: %v\n", err)
	}

	deriveSpan := root.Child("derive")
	dopts := pepa.DeriveOptions{
		MaxStates: *maxStates, Workers: *workers, Span: deriveSpan, Metrics: reg,
		Events: tele.Log, Progress: tele.Heartbeat.ObserveProgress,
	}
	var dstats obsv.DeriveStats
	if instrumented {
		dopts.Stats = &dstats
	}
	ss, err := pepa.Derive(model, dopts)
	deriveSpan.End()
	if *stats && dstats.States > 0 {
		fmt.Fprintln(stderr, dstats.String())
	}
	if err != nil {
		return err
	}
	c := ss.Chain
	fmt.Fprintf(stdout, "states: %d\ntransitions: %d\nsequential components: %d\n",
		c.NumStates(), c.NumTransitions(), ss.NumLeaf)
	if err := c.CheckIrreducible(); err != nil {
		fmt.Fprintf(stderr, "warning: %v\n", err)
	}

	sopts := linalg.Options{
		Workers: *workers, Metrics: reg,
		Events: tele.Log, Progress: tele.Heartbeat.ObserveProgress,
	}
	var sstats obsv.SolveStats
	if instrumented {
		sopts.Stats = &sstats
	}
	solveSpan := root.Child("solve")
	pi, err := solveSteady(c, *solver, sopts)
	solveSpan.End()
	if *stats && sstats.Solver != "" {
		fmt.Fprintln(stderr, sstats.String())
	}
	if err != nil {
		return err
	}

	measures := make(map[string]float64)
	measureSpan := root.Child("measures")
	if *lump {
		if _, q, err := c.Lump(make(ctmc.Partition, c.NumStates())); err == nil {
			fmt.Fprintf(stdout, "lumped quotient: %d states\n", q.NumStates())
		} else {
			fmt.Fprintf(stderr, "lumping failed: %v\n", err)
		}
	}
	if *level != "" {
		var leaf int
		var prefix string
		if _, err := fmt.Sscanf(*level, "%d:%s", &leaf, &prefix); err != nil {
			measureSpan.End()
			return fmt.Errorf("bad -level %q (want leaf:prefix): %w", *level, err)
		}
		l, err := ss.LevelExpectation(pi, leaf, prefix)
		if err != nil {
			measureSpan.End()
			return err
		}
		fmt.Fprintf(stdout, "mean level of leaf %d (%s*): %.8g\n", leaf, prefix, l)
		measures[fmt.Sprintf("mean_level.%d.%s", leaf, prefix)] = l
	}
	fmt.Fprintln(stdout, "action throughputs:")
	for _, a := range c.Actions() {
		x := c.ActionThroughput(pi, a)
		fmt.Fprintf(stdout, "  %-16s %.8g\n", a, x)
		measures["throughput."+a] = x
	}
	if *dumpStates {
		fmt.Fprintln(stdout, "stationary distribution:")
		for i := 0; i < c.NumStates(); i++ {
			fmt.Fprintf(stdout, "  %.10g  %s\n", pi[i], c.Label(i))
		}
	}
	measureSpan.End()
	root.End()

	if *stats {
		root.WriteTree(stderr)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := root.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *manifest != "" {
		m := obsv.NewManifest("pepa")
		m.Args = args
		m.Model = modelName
		m.Solver = *solver
		m.Workers = *workers
		m.Derive = &dstats
		if sstats.Solver != "" {
			m.Solve = &sstats
		}
		m.Measures = measures
		m.Metrics = reg.Snapshot()
		m.Events = tele.Record()
		rec := root.Record()
		m.Trace = &rec
		if err := m.WriteFile(*manifest); err != nil {
			return err
		}
	}
	return nil
}

// runLint is the -lint mode: static checks only, no derivation. The
// findings go to stdout (text or JSON) and, when -manifest is also
// given, into a run manifest as an obsv.LintRecord. Error-severity
// findings make the run fail; warnings alone do not.
func runLint(modelName, src string, jsonOut bool, manifestPath string, args []string, stdout io.Writer) error {
	results := []analysis.FileResult{{File: modelName, Diags: analysis.LintSource(modelName, src)}}
	if jsonOut {
		if err := analysis.WriteJSON(stdout, results); err != nil {
			return err
		}
	} else {
		analysis.WriteText(stdout, results)
	}
	errs, warns := analysis.Count(results)
	if manifestPath != "" {
		m := obsv.NewManifest("pepa")
		m.Args = args
		m.Model = modelName
		rec := &obsv.LintRecord{Errors: errs, Warnings: warns}
		for _, d := range results[0].Diags {
			rec.Diags = append(rec.Diags, obsv.LintDiag{
				Rule:     d.Rule,
				Severity: d.Severity.String(),
				File:     d.Pos.File,
				Line:     d.Pos.Line,
				Msg:      d.Msg,
			})
		}
		m.Lint = rec
		if err := m.WriteFile(manifestPath); err != nil {
			return err
		}
	}
	if errs > 0 {
		return fmt.Errorf("pepa: lint found %d error(s)", errs)
	}
	return nil
}

// solveSteady dispatches on the -solver flag. See the "Choosing a
// solver" section of README.md for when each wins.
func solveSteady(c *ctmc.Chain, solver string, opts linalg.Options) ([]float64, error) {
	switch solver {
	case "auto":
		if opts.Stats == nil && opts.Metrics == nil && opts.Workers <= 1 {
			return c.SteadyState()
		}
		return c.SteadyStateAuto(opts)
	case "gth":
		return linalg.SteadyStateGTH(c.Generator().ToDense())
	case "power":
		return linalg.SteadyStatePower(c.Generator(), opts)
	case "gs":
		return linalg.SteadyStateGaussSeidel(c.Generator(), opts)
	case "jacobi":
		return linalg.SteadyStateJacobi(c.Generator(), opts)
	default:
		return nil, fmt.Errorf("unknown -solver %q (want auto, gth, power, gs or jacobi)", solver)
	}
}
