// admitbench measures pepad's admission control under overload and
// compares it with the analyzable model (policies.AdmissionQueue).
// It stands up the serving stack on a real HTTP socket, calibrates
// the mean job size with an admit-everything warmup, then drives a
// seeded Poisson arrival stream of exponentially-sized sweep jobs at
// several offered loads against a work-seconds admission bound,
// counting 202s and 429s. For each load it prints the observed
// reject fraction and completed-job throughput next to the M/M/c/K
// prediction built from the measured mean job size — the numbers
// behind the "Admission control under overload" section of
// EXPERIMENTS.md.
//
// Job sizes are drawn exponential (a point count ~ Exp with the
// -points mean; every point is one cached-shape solve) so the
// measured system actually is the M in the model's service position.
// All jobs share one model shape, so after the first derivation the
// shared cache makes job cost proportional to the point count.
//
// Usage (from the repository root):
//
//	go run ./tools/admitbench
//	go run ./tools/admitbench -jobs 400 -queue-places 4 -loads 0.5,0.9,1.2,1.5,2.0
//
// The daemon runs one job at a time (-job-workers 1 by default): on
// the single-CPU containers this is benchmarked on, concurrent jobs
// would time-share the core and break the "c independent servers"
// reading of the model.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"pepatags/internal/obsv"
	"pepatags/internal/policies"
	"pepatags/internal/serve"
	"pepatags/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("admitbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		points  = fs.Int("points", 6, "mean sweep points per job (job sizes are Exp with this mean)")
		jobs    = fs.Int("jobs", 300, "arrivals per load point")
		warm    = fs.Int("warm", 30, "calibration jobs before measuring")
		workers = fs.Int("job-workers", 1, "concurrent jobs (the model's c servers)")
		places  = fs.Int("queue-places", 4, "admission bound beyond the servers, in mean jobs (the model's Queue)")
		loads   = fs.String("loads", "0.5,0.8,1.0,1.2,1.5,2.0", "offered loads rho = lambda/(c*mu), comma-separated")
		seed    = fs.Uint64("seed", 1, "PCG seed for job sizes and the Poisson arrival stream")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var rhos []float64
	for _, s := range strings.Split(*loads, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(stderr, "admitbench: bad load %q\n", s)
			return 2
		}
		rhos = append(rhos, v)
	}
	if err := bench(*points, *jobs, *warm, *workers, *places, rhos, *seed, stdout); err != nil {
		fmt.Fprintln(stderr, "admitbench:", err)
		return 1
	}
	return 0
}

// jobBody marshals a submit request for one job whose size (point
// count) is drawn exponential with the given mean. Every job uses the
// same model shape — only the t-axis length varies — so all of them
// resolve through one cached derivation and cost ~points x solve.
func jobBody(rng *rand.Rand, meanPoints int) ([]byte, error) {
	n := int(rng.ExpFloat64() * float64(meanPoints))
	if n < 1 {
		n = 1
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1 + 14*float64(i)/float64(n)
	}
	spec := &sweep.Spec{
		Schema: sweep.SpecSchema,
		Name:   "admitbench",
		Groups: []sweep.Group{{
			Point: sweep.Point{
				Series: "tag", Model: "tagexp",
				Lambda: 5, N: 4, K1: 10, K2: 10,
				Service: sweep.ServiceSpec{Kind: "exp", Mu: 10},
			},
			Axes: []sweep.Axis{{Field: "t", Values: vals}},
		}},
	}
	return json.Marshal(serve.SubmitRequest{Spec: spec})
}

type admissionStats struct {
	Admitted            int64   `json:"admitted"`
	Rejected            int64   `json:"rejected"`
	ObservedJobs        int64   `json:"observed_jobs"`
	ObservedWorkSeconds float64 `json:"observed_work_seconds"`
}

func getStats(base string) (admissionStats, error) {
	var st admissionStats
	r, err := http.Get(base + "/v1/admission")
	if err != nil {
		return st, err
	}
	defer r.Body.Close()
	err = json.NewDecoder(r.Body).Decode(&st)
	return st, err
}

// submit POSTs one job; it returns the job ID for 202 and "" for 429.
func submit(base string, body []byte) (string, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var sub serve.SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			return "", err
		}
		return sub.Job.ID, nil
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return "", nil
	default:
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("submit: status %d: %s", resp.StatusCode, b)
	}
}

// drain waits until every admitted job has left the system.
func drain(srv *serve.Server) {
	for _, j := range srv.Jobs() {
		<-j.Done()
	}
}

func bench(meanPoints, jobs, warm, workers, places int, rhos []float64, seed uint64, stdout io.Writer) error {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))

	// runOne submits one random-size job and waits for it.
	runOne := func(base string, srv *serve.Server) error {
		body, err := jobBody(rng, meanPoints)
		if err != nil {
			return err
		}
		id, err := submit(base, body)
		if err != nil {
			return err
		}
		if j, ok := srv.Job(id); ok {
			<-j.Done()
		}
		return nil
	}

	// Phase 1: calibrate the mean job size with an admit-everything
	// server — sequential jobs, with the cold first job (which pays
	// the state-space derivation) excluded from the mean via a stats
	// snapshot taken after it finishes.
	cal := serve.New(serve.Config{JobWorkers: 1, SolveWorkers: 1, Log: obsv.NewEventLog(obsv.EventLogConfig{})})
	ts := httptest.NewServer(cal.Handler())
	if err := runOne(ts.URL, cal); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}
	cold, err := getStats(ts.URL)
	if err != nil {
		return err
	}
	for i := 0; i < warm; i++ {
		if err := runOne(ts.URL, cal); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}
	st, err := getStats(ts.URL)
	ts.Close()
	cal.Shutdown(context.Background())
	if err != nil {
		return err
	}
	if st.ObservedJobs-cold.ObservedJobs < 1 {
		return fmt.Errorf("warmup produced no warm jobs")
	}
	meanJob := (st.ObservedWorkSeconds - cold.ObservedWorkSeconds) / float64(st.ObservedJobs-cold.ObservedJobs)
	mu := 1 / meanJob
	bound := float64(workers+places) * meanJob
	fmt.Fprintf(stdout, "admitbench: Exp(%d)-point jobs, E[job] = %.1f ms (mu = %.2f/s), c = %d, bound = %.3f s (K = %d)\n\n",
		meanPoints, meanJob*1e3, mu, workers, bound, workers+places)

	// Phase 2: one measured server, estimator seeded calibrated,
	// bound set in work-seconds.
	srv := serve.New(serve.Config{
		JobWorkers:       workers,
		SolveWorkers:     1,
		QueueDepth:       4 * (workers + places),
		AdmissionBound:   bound,
		SeedPointSeconds: meanJob / float64(meanPoints),
		Log:              obsv.NewEventLog(obsv.EventLogConfig{}),
	})
	ms := httptest.NewServer(srv.Handler())
	defer ms.Close()
	defer srv.Shutdown(context.Background())

	// Re-warm this server's own cache before measuring.
	if err := runOne(ms.URL, srv); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%5s %9s %9s %9s %9s %3s %11s %11s %11s %11s\n",
		"rho", "lambda/s", "E[job]ms", "admitted", "rejected", "K", "p_rej obs", "p_rej model", "X obs /s", "X model /s")
	for _, rho := range rhos {
		lambda := rho * float64(workers) * mu
		before, err := getStats(ms.URL)
		if err != nil {
			return err
		}
		// Absolute-clock Poisson schedule: submit latency does not
		// stretch the inter-arrival gaps.
		start := time.Now()
		next := start
		for i := 0; i < jobs; i++ {
			time.Sleep(time.Until(next))
			body, err := jobBody(rng, meanPoints)
			if err != nil {
				return err
			}
			if _, err := submit(ms.URL, body); err != nil {
				return err
			}
			next = next.Add(time.Duration(rng.ExpFloat64() / lambda * float64(time.Second)))
		}
		// The driver and the daemon share the CPU, so the submission
		// window stretches under load; the model gets the arrival rate
		// the daemon actually saw, not the intended one.
		window := time.Since(start).Seconds()
		effLambda := float64(jobs) / window
		drain(srv)
		elapsed := time.Since(start).Seconds()
		after, err := getStats(ms.URL)
		if err != nil {
			return err
		}

		admitted := after.Admitted - before.Admitted
		rejected := after.Rejected - before.Rejected
		if admitted+rejected != int64(jobs) {
			return fmt.Errorf("accounting: %d admitted + %d rejected != %d submitted", admitted, rejected, jobs)
		}
		pObs := float64(rejected) / float64(jobs)
		xObs := float64(admitted) / elapsed

		// The model is built from what this load point actually served:
		// the measured mean job size sets mu, and the fixed work-seconds
		// bound maps to K = bound/E[job] jobs in system.
		if after.ObservedJobs == before.ObservedJobs {
			return fmt.Errorf("rho %.2f: no jobs observed", rho)
		}
		meas := (after.ObservedWorkSeconds - before.ObservedWorkSeconds) / float64(after.ObservedJobs-before.ObservedJobs)
		k := int(bound/meas + 0.5)
		if k < workers+1 {
			k = workers + 1
		}
		pred, err := policies.AdmissionQueue{Lambda: effLambda, Mu: 1 / meas, Servers: workers, Queue: k - workers}.Measures()
		if err != nil {
			return err
		}
		effRho := effLambda * meas / float64(workers)
		fmt.Fprintf(stdout, "%5.2f %9.2f %9.1f %9d %9d %3d %11.4f %11.4f %11.2f %11.2f\n",
			effRho, effLambda, meas*1e3, admitted, rejected, k, pObs, pred.RejectProbability, xObs, pred.Throughput)
	}
	return nil
}
