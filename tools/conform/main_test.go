package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pepatags/internal/conform"
	"pepatags/internal/obsv"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"positional"},
		{"-inject", "bogus"},
		{"-n", "0"}, // no cap and no duration
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("conform %v: exit %d, want 2", args, code)
		}
	}
}

func TestCleanRunReportsAndManifest(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	manifestPath := filepath.Join(dir, "run.json")
	code, stdout, stderr := runCLI(t,
		"-seed", "1", "-n", "15", "-q", "-json", jsonPath, "-manifest", manifestPath)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "PASS: all oracles held") {
		t.Errorf("summary missing PASS line:\n%s", stdout)
	}

	var rep conform.Report
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != conform.ReportSchema || rep.Scenarios != 15 || !rep.Passed() {
		t.Errorf("unexpected report: schema %q, %d scenarios, passed=%v",
			rep.Schema, rep.Scenarios, rep.Passed())
	}

	m, err := obsv.ReadManifest(manifestPath)
	if err != nil {
		t.Fatalf("manifest does not validate: %v", err)
	}
	if m.Tool != "conform" || m.Conform == nil {
		t.Fatalf("manifest missing conform section: %+v", m)
	}
	if m.Conform.Scenarios != 15 || m.Conform.Violations != 0 {
		t.Errorf("conform record %+v, want 15 scenarios and 0 violations", m.Conform)
	}
}

func TestInjectionExitsNonZeroWithRepro(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t,
		"-seed", "1", "-n", "200", "-q", "-inject", "direct-rate", "-repro-dir", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "FAIL: scenario") || !strings.Contains(stdout, "shrunken:") {
		t.Errorf("failure summary incomplete:\n%s", stdout)
	}
	repros, err := conform.LoadRepros(dir)
	if err != nil {
		t.Fatalf("LoadRepros: %v", err)
	}
	if len(repros) != 1 {
		t.Fatalf("%d repro files written, want 1", len(repros))
	}
}

func TestJSONToStdout(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-seed", "5", "-n", "5", "-q", "-json", "-")
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
	}
	// stdout carries the JSON report first, then the text summary.
	dec := json.NewDecoder(strings.NewReader(stdout))
	var rep conform.Report
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("stdout does not start with the JSON report: %v", err)
	}
	if rep.Seed != 5 || rep.Scenarios != 5 {
		t.Errorf("report seed %d scenarios %d, want 5 and 5", rep.Seed, rep.Scenarios)
	}
}
