// conform runs the differential conformance harness from the command
// line: it generates seeded random scenarios and cross-checks every
// route the repo has to the same numbers (PEPA derivation, direct CTMC
// construction, the stationary-solver battery, uniformised transients,
// the simulator, and the decomposition approximations). See
// internal/conform and docs/TESTING.md.
//
// Usage:
//
//	conform -seed 1 -n 200
//	conform -seed 1 -duration 30s -json report.json
//	conform -seed 1 -n 50 -inject direct-rate -repro-dir /tmp/repros
//
// Exit status: 0 when every oracle held on every scenario, 1 when a
// violation was found (a shrunken reproducer is printed and, with
// -repro-dir, written as a repro file), 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"pepatags/internal/conform"
	"pepatags/internal/obsv"
)

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: conform [flags]

Runs the differential conformance harness: seeded random scenarios,
each checked by the full oracle battery (see docs/TESTING.md).

  -seed N          generation seed (default 1)
  -n N             number of scenarios (default 100; 0 = until -duration)
  -duration D      wall-clock budget, e.g. 30s, 10m (0 = until -n)
  -inject NAME     deliberately perturb one backend: direct-rate, sim-loss
  -repro-dir DIR   write a shrunken repro file per violation
  -json FILE       write the full JSON report ("-" for stdout)
  -manifest FILE   write a run manifest (schema pepatags/run-manifest/v1)
  -max-violations  stop after this many failing scenarios (default 1)
  -q               no per-scenario progress output`)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("conform", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() { usage(stderr) }
	seed := fs.Uint64("seed", 1, "generation seed")
	n := fs.Int("n", 100, "number of scenarios (0 = until -duration)")
	duration := fs.Duration("duration", 0, "wall-clock budget (0 = until -n)")
	inject := fs.String("inject", "", "perturb one backend (direct-rate, sim-loss)")
	reproDir := fs.String("repro-dir", "", "directory for shrunken repro files")
	jsonOut := fs.String("json", "", "write the JSON report here (- for stdout)")
	manifestOut := fs.String("manifest", "", "write a run manifest here")
	maxViol := fs.Int("max-violations", 1, "stop after this many failing scenarios")
	quiet := fs.Bool("q", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "conform: unexpected arguments: %v\n", fs.Args())
		usage(stderr)
		return 2
	}
	switch *inject {
	case "", conform.InjectDirectRate, conform.InjectSimLoss:
	default:
		fmt.Fprintf(stderr, "conform: unknown -inject %q (want %s or %s)\n",
			*inject, conform.InjectDirectRate, conform.InjectSimLoss)
		return 2
	}
	if *n == 0 && *duration == 0 {
		fmt.Fprintln(stderr, "conform: need -n or -duration")
		return 2
	}

	opts := conform.Options{
		Seed:          *seed,
		N:             *n,
		Duration:      *duration,
		Inject:        *inject,
		ReproDir:      *reproDir,
		MaxViolations: *maxViol,
	}
	if !*quiet {
		start := time.Now()
		opts.Progress = func(i int, sc conform.Scenario) {
			if (i+1)%25 == 0 {
				fmt.Fprintf(stderr, "conform: %d scenarios in %.1fs\n", i+1, time.Since(start).Seconds())
			}
		}
	}
	rep, err := conform.Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "conform: %v\n", err)
		return 2
	}

	if *jsonOut != "" {
		data, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			fmt.Fprintf(stderr, "conform: marshal report: %v\n", merr)
			return 2
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			stdout.Write(data)
		} else if werr := os.WriteFile(*jsonOut, data, 0o644); werr != nil {
			fmt.Fprintf(stderr, "conform: %v\n", werr)
			return 2
		}
	}
	if *manifestOut != "" {
		m := obsv.NewManifest("conform")
		m.Args = args
		m.Seed = rep.Seed
		m.Conform = &obsv.ConformRecord{
			Seed:       rep.Seed,
			Inject:     rep.Inject,
			Scenarios:  rep.Scenarios,
			Checks:     rep.Checks,
			ByKind:     rep.ByKind,
			Violations: len(rep.Violations),
			ElapsedSec: rep.ElapsedSec,
		}
		if werr := m.WriteFile(*manifestOut); werr != nil {
			fmt.Fprintf(stderr, "conform: %v\n", werr)
			return 2
		}
	}

	printSummary(stdout, rep)
	if rep.Passed() {
		return 0
	}
	return 1
}

func printSummary(w io.Writer, rep *conform.Report) {
	fmt.Fprintf(w, "conform: seed %d: %d scenarios, %d oracle checks in %.1fs\n",
		rep.Seed, rep.Scenarios, rep.Checks, rep.ElapsedSec)
	kinds := make([]string, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-8s %d scenarios\n", k, rep.ByKind[k])
	}
	oracles := make([]string, 0, len(rep.ByOracle))
	for o := range rep.ByOracle {
		oracles = append(oracles, o)
	}
	sort.Strings(oracles)
	for _, o := range oracles {
		fmt.Fprintf(w, "  %-32s %d checks\n", o, rep.ByOracle[o])
	}
	if rep.Passed() {
		fmt.Fprintln(w, "PASS: all oracles held")
		return
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(w, "FAIL: scenario %d violated %s\n", v.Index, v.Oracle)
		fmt.Fprintf(w, "  detail:   %s\n", v.Detail)
		fmt.Fprintf(w, "  original: %s\n", v.Scenario)
		if v.Shrunk != nil {
			fmt.Fprintf(w, "  shrunken: %s\n", *v.Shrunk)
		}
		if v.ReproFile != "" {
			fmt.Fprintf(w, "  repro:    %s\n", v.ReproFile)
		}
	}
}
