// servesmoke is the CI smoke test for the pepad daemon: it builds the
// real binary, starts it on an ephemeral port, submits the Figure 8
// sweep spec over HTTP, polls the job to completion, fetches the
// rendered table, drains the daemon with SIGTERM and validates the
// run manifest the job left behind — the full serving path, end to
// end, against a real listening socket.
//
// Usage (from the repository root; `make serve-smoke` runs exactly
// this):
//
//	go run ./tools/servesmoke
//	go run ./tools/servesmoke -fig figure8 -keep -dir serve-smoke-run
//
// Exit codes: 0 the whole lifecycle worked, 1 any step failed,
// 2 usage errors.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pepatags/internal/obsv"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("servesmoke", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "figure8", "built-in figure whose sweep spec to submit")
	dir := fs.String("dir", "", "working directory for the binary and manifests (default: a temp dir)")
	keep := fs.Bool("keep", false, "keep the working directory instead of deleting it")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall budget for the job to complete")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: servesmoke [-fig figure8] [-dir path] [-keep]")
		return 2
	}

	if *dir == "" {
		d, err := os.MkdirTemp("", "servesmoke")
		if err != nil {
			fmt.Fprintln(stderr, "servesmoke:", err)
			return 1
		}
		*dir = d
	} else if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(stderr, "servesmoke:", err)
		return 1
	}
	if !*keep {
		defer os.RemoveAll(*dir)
	}

	if err := smoke(*fig, *dir, *timeout, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "servesmoke:", err)
		return 1
	}
	fmt.Fprintln(stdout, "servesmoke: ok")
	return 0
}

func smoke(fig, dir string, timeout time.Duration, stdout, stderr io.Writer) error {
	// The spec behind the figure, through the same dump path users take.
	spec, err := exec.Command("go", "run", "./cmd/tagseval", "-short", "-spec-dump", fig).Output()
	if err != nil {
		return fmt.Errorf("spec-dump %s: %w", fig, err)
	}

	// Build and start the real daemon binary on an ephemeral port.
	bin := filepath.Join(dir, "pepad")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pepad").CombinedOutput(); err != nil {
		return fmt.Errorf("building pepad: %w\n%s", err, out)
	}
	manifests := filepath.Join(dir, "manifests")
	daemon := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "-1",
		"-manifest-dir", manifests,
		"-drain-timeout", "60s")
	daemonErr, err := daemon.StderrPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting pepad: %w", err)
	}
	defer daemon.Process.Kill() // no-op after a clean Wait

	// The daemon announces its bound address on stderr; the rest of the
	// transcript is forwarded for diagnosis.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(daemonErr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(stderr, "  pepad |", line)
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("pepad never announced its address")
	}

	// Submit the sweep over real HTTP.
	body, err := json.Marshal(map[string]json.RawMessage{"spec": spec})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("POST /v1/jobs: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return fmt.Errorf("POST /v1/jobs: status %d: %s", resp.StatusCode, b)
	}
	var sub struct {
		Job struct {
			ID     string `json:"id"`
			Points int    `json:"points"`
		} `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return fmt.Errorf("decoding submit response: %w", err)
	}
	resp.Body.Close()
	fmt.Fprintf(stdout, "servesmoke: submitted %s as %s (%d points) to %s\n", fig, sub.Job.ID, sub.Job.Points, base)

	// Poll to completion.
	deadline := time.Now().Add(timeout)
	state := ""
	for state != "done" {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %q after %v", sub.Job.ID, state, timeout)
		}
		r, err := http.Get(base + "/v1/jobs/" + sub.Job.ID)
		if err != nil {
			return fmt.Errorf("GET job: %w", err)
		}
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(r.Body).Decode(&v)
		r.Body.Close()
		if err != nil {
			return fmt.Errorf("decoding job view: %w", err)
		}
		if v.State == "failed" || v.State == "canceled" {
			return fmt.Errorf("job %s %s: %s", sub.Job.ID, v.State, v.Error)
		}
		state = v.State
		time.Sleep(100 * time.Millisecond)
	}

	// The rendered table must come back non-empty.
	r, err := http.Get(base + "/v1/jobs/" + sub.Job.ID + "/result?format=table")
	if err != nil {
		return fmt.Errorf("GET result: %w", err)
	}
	table, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || len(bytes.TrimSpace(table)) == 0 {
		return fmt.Errorf("result: status %d, %d bytes", r.StatusCode, len(table))
	}
	fmt.Fprintf(stdout, "servesmoke: job done, table %d bytes\n", len(table))

	// Drain and require a clean exit.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signaling pepad: %w", err)
	}
	if err := daemon.Wait(); err != nil {
		return fmt.Errorf("pepad exit: %w", err)
	}

	// The job's manifest must exist and validate.
	m, err := obsv.ReadManifest(filepath.Join(manifests, sub.Job.ID+".json"))
	if err != nil {
		return fmt.Errorf("job manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("job manifest invalid: %w", err)
	}
	if m.Tool != "pepad" || m.Sweep == nil || m.Sweep.Points != sub.Job.Points {
		return fmt.Errorf("job manifest inconsistent: tool %q, sweep %+v", m.Tool, m.Sweep)
	}
	fmt.Fprintf(stdout, "servesmoke: manifest ok (%d points, %d cache hits)\n", m.Sweep.Points, m.Sweep.CacheHits)
	return nil
}
