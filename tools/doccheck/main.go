// doccheck is a dead-link checker for the repository's markdown
// documentation. It scans inline links ([text](target)) in the given
// files and reports:
//
//   - relative links whose target file does not exist (resolved
//     against the linking file's directory);
//   - fragment links (#section, file.md#section) whose heading does
//     not exist in the target file, using GitHub's heading-anchor
//     rules (lowercase, punctuation stripped, spaces to hyphens,
//     duplicate slugs suffixed -1, -2, ...).
//
// External links (http://, https://, mailto:) are not fetched — CI
// must not depend on the network — and links inside fenced code
// blocks are ignored.
//
// Usage:
//
//	doccheck [-quiet] README.md docs/*.md
//
// Exit codes: 0 all links resolve, 1 at least one dead link,
// 2 usage or I/O problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links, non-greedily, skipping images
// by allowing but not requiring the leading bang to be absent. Nested
// brackets and parenthesised URLs are out of scope — the docs do not
// use them.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// headingRe matches ATX headings (the only style the docs use).
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// slug converts a heading to its GitHub anchor, minus the duplicate
// suffixing (handled by the caller): inline formatting stripped,
// lowercased, punctuation removed, spaces and runs thereof hyphenated.
func slug(heading string) string {
	s := strings.NewReplacer("`", "", "*", "", "_", " ").Replace(heading)
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchors returns the set of heading anchors a markdown file defines.
func anchors(content string) map[string]bool {
	out := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		base := slug(m[1])
		if n := counts[base]; n > 0 {
			out[fmt.Sprintf("%s-%d", base, n)] = true
		} else {
			out[base] = true
		}
		counts[base]++
	}
	return out
}

// links returns the inline link targets of a markdown file, skipping
// fenced code blocks, with the 1-based line of each.
type link struct {
	target string
	line   int
}

func links(content string) []link {
	var out []link
	inFence := false
	for i, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			out = append(out, link{target: m[1], line: i + 1})
		}
	}
	return out
}

func external(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

// checkFile reports every dead link in one markdown file.
func checkFile(path string, anchorCache map[string]map[string]bool) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	content := string(data)
	anchorCache[path] = anchors(content)

	var dead []string
	for _, l := range links(content) {
		if external(l.target) {
			continue
		}
		file, frag, _ := strings.Cut(l.target, "#")
		targetPath := path
		if file != "" {
			targetPath = filepath.Join(filepath.Dir(path), file)
			info, err := os.Stat(targetPath)
			if err != nil {
				dead = append(dead, fmt.Sprintf("%s:%d: broken link %q: %s does not exist", path, l.line, l.target, targetPath))
				continue
			}
			if info.IsDir() {
				continue // directory links render fine on GitHub
			}
		}
		if frag == "" {
			continue
		}
		if !strings.HasSuffix(targetPath, ".md") {
			continue // anchors into non-markdown files are not ours to judge
		}
		a, ok := anchorCache[targetPath]
		if !ok {
			tdata, err := os.ReadFile(targetPath)
			if err != nil {
				return nil, err
			}
			a = anchors(string(tdata))
			anchorCache[targetPath] = a
		}
		if !a[frag] {
			dead = append(dead, fmt.Sprintf("%s:%d: broken anchor %q: no heading #%s in %s", path, l.line, l.target, frag, targetPath))
		}
	}
	return dead, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("doccheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quiet := fs.Bool("quiet", false, "suppress per-file ok lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: doccheck [-quiet] <file.md> ...")
		return 2
	}

	anchorCache := map[string]map[string]bool{}
	failed := 0
	for _, path := range fs.Args() {
		dead, err := checkFile(path, anchorCache)
		if err != nil {
			fmt.Fprintf(stderr, "doccheck: %s: %v\n", path, err)
			return 2
		}
		if len(dead) > 0 {
			failed++
			for _, d := range dead {
				fmt.Fprintln(stderr, d)
			}
			continue
		}
		if !*quiet {
			fmt.Fprintf(stdout, "ok %s\n", path)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "doccheck: %d of %d files have dead links\n", failed, fs.NArg())
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
