package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Quick start":                    "quick-start",
		"POST /v1/jobs — submit a sweep": "post-v1jobs--submit-a-sweep",
		"`GET /healthz`":                 "get-healthz",
		"Reading order by task":          "reading-order-by-task",
		"M/M/c/K":                        "mmck",
	}
	for heading, want := range cases {
		if got := slug(heading); got != want {
			t.Errorf("slug(%q) = %q, want %q", heading, got, want)
		}
	}
}

func TestAnchorsDeduplicates(t *testing.T) {
	a := anchors("# Top\n## Same\ntext\n## Same\n")
	for _, want := range []string{"top", "same", "same-1"} {
		if !a[want] {
			t.Errorf("anchors missing %q (have %v)", want, a)
		}
	}
}

func TestGoodLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Other doc\n\n## Details\n")
	good := write(t, dir, "good.md", strings.Join([]string{
		"# Good",
		"",
		"A [local](other.md) link, an [anchored](other.md#details) one,",
		"a [self](#good) fragment, an [external](https://example.com/x) one,",
		"and a [dir](sub) link.",
		"",
		"```sh",
		"echo 'links in [code](missing.md) fences do not count'",
		"```",
	}, "\n"))
	write(t, dir, "sub/keep", "")

	var out, errs bytes.Buffer
	if code := run([]string{good}, &out, &errs); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errs.String())
	}
	if !strings.Contains(out.String(), "ok "+good) {
		t.Errorf("missing ok line:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-quiet", good}, &out, &errs); code != 0 || out.String() != "" {
		t.Errorf("-quiet run: exit %d, stdout %q", code, out.String())
	}
}

func TestDeadLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Other doc\n")
	bad := write(t, dir, "bad.md", strings.Join([]string{
		"# Bad",
		"",
		"A [gone](missing.md) file, a [bad anchor](other.md#nope),",
		"and a [bad self anchor](#also-nope).",
	}, "\n"))

	var out, errs bytes.Buffer
	if code := run([]string{bad}, &out, &errs); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	for _, want := range []string{"missing.md", "#nope", "#also-nope", "bad.md:3", "1 of 1 files"} {
		if !strings.Contains(errs.String(), want) {
			t.Errorf("diagnostics missing %q:\n%s", want, errs.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run(nil, &out, &errs); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errs); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "absent.md")}, &out, &errs); code != 2 {
		t.Errorf("unreadable input: exit %d, want 2", code)
	}
}

// TestRepoDocsAreClean runs the checker over the repository's own
// documentation, so a dead link fails `go test ./...`, not just the
// dedicated CI step.
func TestRepoDocsAreClean(t *testing.T) {
	root := "../.."
	files := []string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "DESIGN.md"),
		filepath.Join(root, "EXPERIMENTS.md"),
		filepath.Join(root, "ROADMAP.md"),
	}
	globbed, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, globbed...)

	var out, errs bytes.Buffer
	if code := run(append([]string{"-quiet"}, files...), &out, &errs); code != 0 {
		t.Errorf("repo docs have dead links:\n%s", errs.String())
	}
}
