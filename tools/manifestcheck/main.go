// manifestcheck validates run manifests written by the -manifest flag
// of cmd/pepa, cmd/tagseval and cmd/tagssim. It is the CI gate for the
// manifest schema: every file passed on the command line must load,
// validate against pepatags/run-manifest/v1 and come from a known
// tool, or the process exits non-zero.
//
// Usage:
//
//	manifestcheck run1.json run2.json ...
//	manifestcheck -quiet runs/*.json
package main

import (
	"flag"
	"fmt"
	"os"

	"pepatags/internal/obsv"
)

var knownTools = map[string]bool{
	"pepa":     true,
	"tagseval": true,
	"tagssim":  true,
}

func main() {
	quiet := flag.Bool("quiet", false, "suppress per-file OK lines")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: manifestcheck [-quiet] <manifest.json> ...")
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "manifestcheck: %s: %v\n", path, err)
			failed++
			continue
		}
		if !*quiet {
			fmt.Printf("ok %s\n", path)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "manifestcheck: %d of %d manifests failed\n", failed, flag.NArg())
		os.Exit(1)
	}
}

func check(path string) error {
	m, err := obsv.ReadManifest(path)
	if err != nil {
		return err
	}
	if !knownTools[m.Tool] {
		return fmt.Errorf("unknown tool %q", m.Tool)
	}
	// A manifest that records nothing is a wiring bug in the producer.
	if len(m.Measures) == 0 && len(m.Artefacts) == 0 && m.Derive == nil {
		return fmt.Errorf("manifest records no measures, artefacts or derive stats")
	}
	return nil
}
