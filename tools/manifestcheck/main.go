// manifestcheck validates run manifests written by the -manifest flag
// of cmd/pepa, cmd/tagseval, cmd/tagssim and tools/govet-suite, and by
// the pepad daemon's -manifest-dir (one manifest per job). It is the
// CI gate for the manifest schema: every file passed on the command
// line must load, validate against pepatags/run-manifest/v1 and come
// from a known tool, or the process exits non-zero.
//
// Usage:
//
//	manifestcheck run1.json run2.json ...
//	manifestcheck -quiet runs/*.json
//
// The schema is documented in docs/MANIFEST.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pepatags/internal/obsv"
)

var knownTools = map[string]bool{
	"pepa":        true,
	"tagseval":    true,
	"tagssim":     true,
	"conform":     true,
	"pepad":       true,
	"govet-suite": true,
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: manifestcheck [-quiet] <manifest.json> ...

Validates run manifests (schema pepatags/run-manifest/v1, see
docs/MANIFEST.md) written by the -manifest flag of cmd/pepa,
cmd/tagseval and cmd/tagssim, or by cmd/pepad's -manifest-dir.
Exits 0 when every file validates, 1 when any fails (with a
per-file failure summary), 2 on usage errors such as no files
at all.`)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("manifestcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() { usage(stderr) }
	quiet := fs.Bool("quiet", false, "suppress per-file OK lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		usage(stderr)
		return 2
	}
	type failure struct {
		path string
		err  error
	}
	var failures []failure
	for _, path := range fs.Args() {
		if err := check(path); err != nil {
			failures = append(failures, failure{path, err})
			continue
		}
		if !*quiet {
			fmt.Fprintf(stdout, "ok %s\n", path)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "manifestcheck: %d of %d manifests failed:\n", len(failures), fs.NArg())
		for _, f := range failures {
			fmt.Fprintf(stderr, "  %s: %v\n", f.path, f.err)
		}
		return 1
	}
	return 0
}

func check(path string) error {
	m, err := obsv.ReadManifest(path)
	if err != nil {
		return err
	}
	if !knownTools[m.Tool] {
		return fmt.Errorf("unknown tool %q", m.Tool)
	}
	// A manifest that records nothing is a wiring bug in the producer.
	// The one exception is a failure manifest: a run that died before
	// producing results records its error plus the flight recorder, and
	// that pair is the record.
	hasResults := len(m.Measures) > 0 || len(m.Artefacts) > 0 || m.Derive != nil ||
		m.Sweep != nil || m.Lint != nil || m.Conform != nil || m.Analysis != nil ||
		m.Sim != nil
	if m.Error != "" {
		if m.Events == nil || len(m.Events.Recorder) == 0 {
			return fmt.Errorf("failure manifest (error %q) carries no flight-recorder events", m.Error)
		}
		return nil
	}
	if !hasResults {
		return fmt.Errorf("manifest records no measures, artefacts, derive stats, sweep, lint or conform record")
	}
	return nil
}
