package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pepatags/internal/obsv"
)

func TestCheck(t *testing.T) {
	dir := t.TempDir()

	good := obsv.NewManifest("tagssim")
	good.Measures = map[string]float64{"throughput": 7.9}
	goodPath := filepath.Join(dir, "good.json")
	if err := good.WriteFile(goodPath); err != nil {
		t.Fatal(err)
	}
	if err := check(goodPath); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}

	alien := obsv.NewManifest("not-a-tool")
	alien.Measures = map[string]float64{"x": 1}
	alienPath := filepath.Join(dir, "alien.json")
	if err := alien.WriteFile(alienPath); err != nil {
		t.Fatal(err)
	}
	if err := check(alienPath); err == nil {
		t.Fatal("unknown tool must be rejected")
	}

	empty := obsv.NewManifest("pepa")
	emptyPath := filepath.Join(dir, "empty.json")
	if err := empty.WriteFile(emptyPath); err != nil {
		t.Fatal(err)
	}
	if err := check(emptyPath); err == nil {
		t.Fatal("contentless manifest must be rejected")
	}

	if err := check(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must be rejected")
	}
}

// TestRunCLI exercises the exit codes and the per-file failure
// summary.
func TestRunCLI(t *testing.T) {
	dir := t.TempDir()
	good := obsv.NewManifest("tagssim")
	good.Measures = map[string]float64{"throughput": 7.9}
	goodPath := filepath.Join(dir, "good.json")
	if err := good.WriteFile(goodPath); err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "missing.json")

	var out, errs bytes.Buffer
	if code := run(nil, &out, &errs); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(errs.String(), "usage:") || !strings.Contains(errs.String(), "docs/MANIFEST.md") {
		t.Fatalf("zero-arg usage should mention usage and docs/MANIFEST.md:\n%s", errs.String())
	}

	out.Reset()
	errs.Reset()
	if code := run([]string{goodPath}, &out, &errs); code != 0 {
		t.Fatalf("good manifest: exit %d, stderr %s", code, errs.String())
	}
	if !strings.Contains(out.String(), "ok "+goodPath) {
		t.Fatalf("missing OK line:\n%s", out.String())
	}

	out.Reset()
	errs.Reset()
	if code := run([]string{goodPath, badPath}, &out, &errs); code != 1 {
		t.Fatalf("mixed run: exit %d, want 1", code)
	}
	if !strings.Contains(errs.String(), "1 of 2 manifests failed") || !strings.Contains(errs.String(), badPath) {
		t.Fatalf("failure summary should name the failing file:\n%s", errs.String())
	}
}

// TestCheckAcceptsLintOnlyManifest: a pepa -lint run derives nothing,
// so its manifest carries only the lint record — valid content.
func TestCheckAcceptsLintOnlyManifest(t *testing.T) {
	m := obsv.NewManifest("pepa")
	m.Lint = &obsv.LintRecord{
		Errors:   1,
		Warnings: 2,
		Diags: []obsv.LintDiag{
			{Rule: "dead-sync", Severity: "error", File: "bad.pepa", Line: 2, Msg: "boom"},
		},
	}
	path := filepath.Join(t.TempDir(), "lint.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := check(path); err != nil {
		t.Fatalf("lint-only manifest rejected: %v", err)
	}

	// A malformed lint record must fail validation on write.
	m.Lint.Diags[0].Severity = "fatal"
	if err := m.WriteFile(path); err == nil {
		t.Fatal("bad lint severity accepted")
	}
}

// TestCheckAcceptsConformOnlyManifest: a tools/conform run records
// only the conform accounting section, which is valid content.
func TestCheckAcceptsConformOnlyManifest(t *testing.T) {
	m := obsv.NewManifest("conform")
	m.Conform = &obsv.ConformRecord{
		Seed:      1,
		Scenarios: 200,
		Checks:    3000,
		ByKind:    map[string]int{"tagexp": 80, "pepa": 50},
	}
	path := filepath.Join(t.TempDir(), "conform.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := check(path); err != nil {
		t.Fatalf("conform manifest rejected: %v", err)
	}

	// Inconsistent accounting must fail validation on write.
	m.Conform.Scenarios = 0
	if err := m.WriteFile(path); err == nil {
		t.Fatal("checks without scenarios accepted")
	}
}

// TestCheckAcceptsAnalysisOnlyManifest: a govet-suite run records only
// the analysis section, which is valid content — including a clean run
// with zero findings, which is the usual (and desired) case.
func TestCheckAcceptsAnalysisOnlyManifest(t *testing.T) {
	m := obsv.NewManifest("govet-suite")
	m.Params = map[string]any{"patterns": "./...", "tests": true}
	m.Analysis = &obsv.AnalysisRecord{
		Analyzers:  []string{"floatcmp", "metricname", "spanpair", "lockorder", "goroleak", "ctxflow", "sentinelerr"},
		Packages:   23,
		ElapsedSec: 2.5,
	}
	path := filepath.Join(t.TempDir(), "analyze.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := check(path); err != nil {
		t.Fatalf("analysis-only manifest rejected: %v", err)
	}

	// Findings must reconcile with the per-analyzer breakdown.
	m.Analysis.Findings = 2
	m.Analysis.ByAnalyzer = map[string]int{"lockorder": 1}
	if err := m.WriteFile(path); err == nil {
		t.Fatal("by_analyzer sum != findings accepted")
	}
	m.Analysis.ByAnalyzer["sentinelerr"] = 1
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := check(path); err != nil {
		t.Fatalf("manifest with findings rejected: %v", err)
	}
}

// TestMalformedInputs: non-JSON, truncated JSON and wrong-schema files
// are all rejected with a diagnostic naming the file.
func TestMalformedInputs(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"notjson.json":   "not json at all",
		"truncated.json": `{"schema": "pepatags/run-manifest/v1", "tool": "pepa"`,
		"badschema.json": `{"schema": "pepatags/run-manifest/v9", "tool": "pepa"}`,
		"badtime.json":   `{"schema": "pepatags/run-manifest/v1", "tool": "pepa", "created_at": "yesterday"}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := check(path); err == nil {
			t.Errorf("%s: accepted malformed manifest", name)
		}
		var out, errs bytes.Buffer
		if code := run([]string{path}, &out, &errs); code != 1 {
			t.Errorf("%s: exit %d, want 1", name, code)
		}
		if !strings.Contains(errs.String(), path) {
			t.Errorf("%s: failure summary does not name the file:\n%s", name, errs.String())
		}
	}
}

// TestGoldenOutput pins the exact success and failure output shapes.
func TestGoldenOutput(t *testing.T) {
	dir := t.TempDir()
	good := obsv.NewManifest("tagssim")
	good.Measures = map[string]float64{"throughput": 7.9}
	goodPath := filepath.Join(dir, "good.json")
	if err := good.WriteFile(goodPath); err != nil {
		t.Fatal(err)
	}

	var out, errs bytes.Buffer
	if code := run([]string{goodPath}, &out, &errs); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs.String())
	}
	if got, want := out.String(), "ok "+goodPath+"\n"; got != want {
		t.Errorf("stdout %q, want %q", got, want)
	}
	if errs.String() != "" {
		t.Errorf("stderr not empty on success: %q", errs.String())
	}

	// -quiet suppresses the OK lines entirely.
	out.Reset()
	errs.Reset()
	if code := run([]string{"-quiet", goodPath}, &out, &errs); code != 0 {
		t.Fatalf("quiet run: exit %d", code)
	}
	if out.String() != "" {
		t.Errorf("-quiet still wrote %q", out.String())
	}

	missing := filepath.Join(dir, "missing.json")
	out.Reset()
	errs.Reset()
	if code := run([]string{missing}, &out, &errs); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	if !strings.HasPrefix(errs.String(), "manifestcheck: 1 of 1 manifests failed:\n") {
		t.Errorf("failure header:\n%s", errs.String())
	}
}

// TestUnknownFlag: flag errors are usage errors, exit 2.
func TestUnknownFlag(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errs); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}

// TestCheckFailureManifest: a run that dies before producing results
// writes a manifest with the error and the flight-recorder tail; that
// pair is valid content, but an error without the recorder is not.
func TestCheckFailureManifest(t *testing.T) {
	m := obsv.NewManifest("pepa")
	m.Error = "derive: state space exceeds 10 states"
	m.Events = &obsv.EventLogRecord{
		Emitted: 2,
		Recorder: []obsv.Event{
			{Seq: 1, Level: "info", Kind: "derive.start"},
			{Seq: 2, Level: "error", Kind: "derive.error", Msg: "state space exceeds 10 states"},
		},
	}
	path := filepath.Join(t.TempDir(), "failed.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := check(path); err != nil {
		t.Fatalf("failure manifest rejected: %v", err)
	}

	// An error with no recorder captured is a producer wiring bug.
	m.Events = nil
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := check(path); err == nil {
		t.Fatal("recorder-less failure manifest accepted")
	}
}

// TestCheckAcceptsSweepOnlyManifest: a -sweep run without a figure
// section records only the sweep section, which is valid content.
func TestCheckAcceptsSweepOnlyManifest(t *testing.T) {
	m := obsv.NewManifest("tagseval")
	m.Sweep = &obsv.SweepRecord{
		Name:       "custom",
		SpecSHA256: "4ec9599fc203d176a301536c2e091a19bc852759b255bd6818810a42c5fed14a",
		Points:     3,
	}
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := check(path); err != nil {
		t.Fatalf("sweep-only manifest rejected: %v", err)
	}
}

// TestCheckAcceptsPepadManifests: the daemon writes one manifest per
// job — a success manifest carrying the sweep accounting, and a
// failure manifest (killed mid-drain or canceled) carrying the error
// plus the job's flight-recorder tail. Both shapes must validate.
func TestCheckAcceptsPepadManifests(t *testing.T) {
	dir := t.TempDir()

	done := obsv.NewManifest("pepad")
	done.Args = []string{"job-0001"}
	done.Params = map[string]any{"job": "job-0001", "spec": "figure8"}
	done.Sweep = &obsv.SweepRecord{
		Name:       "figure8",
		SpecSHA256: "4ec9599fc203d176a301536c2e091a19bc852759b255bd6818810a42c5fed14a",
		Points:     28,
		CacheHits:  27,
	}
	donePath := filepath.Join(dir, "job-0001.json")
	if err := done.WriteFile(donePath); err != nil {
		t.Fatal(err)
	}
	if err := check(donePath); err != nil {
		t.Fatalf("pepad success manifest rejected: %v", err)
	}

	killed := obsv.NewManifest("pepad")
	killed.Error = "sweep: run canceled"
	killed.Events = &obsv.EventLogRecord{
		Emitted: 2,
		Recorder: []obsv.Event{
			{Seq: 1, Level: "info", Kind: "sweep.start"},
			{Seq: 2, Level: "error", Kind: "sweep.error", Msg: "run canceled"},
		},
	}
	killedPath := filepath.Join(dir, "job-0002.json")
	if err := killed.WriteFile(killedPath); err != nil {
		t.Fatal(err)
	}
	if err := check(killedPath); err != nil {
		t.Fatalf("pepad failure manifest rejected: %v", err)
	}

	// A canceled job whose recorder was lost is a wiring bug in the
	// daemon, same as for the CLIs.
	killed.Events = nil
	if err := killed.WriteFile(killedPath); err != nil {
		t.Fatal(err)
	}
	if err := check(killedPath); err == nil {
		t.Fatal("recorder-less pepad failure manifest accepted")
	}
}
