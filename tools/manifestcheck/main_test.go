package main

import (
	"path/filepath"
	"testing"

	"pepatags/internal/obsv"
)

func TestCheck(t *testing.T) {
	dir := t.TempDir()

	good := obsv.NewManifest("tagssim")
	good.Measures = map[string]float64{"throughput": 7.9}
	goodPath := filepath.Join(dir, "good.json")
	if err := good.WriteFile(goodPath); err != nil {
		t.Fatal(err)
	}
	if err := check(goodPath); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}

	alien := obsv.NewManifest("not-a-tool")
	alien.Measures = map[string]float64{"x": 1}
	alienPath := filepath.Join(dir, "alien.json")
	if err := alien.WriteFile(alienPath); err != nil {
		t.Fatal(err)
	}
	if err := check(alienPath); err == nil {
		t.Fatal("unknown tool must be rejected")
	}

	empty := obsv.NewManifest("pepa")
	emptyPath := filepath.Join(dir, "empty.json")
	if err := empty.WriteFile(emptyPath); err != nil {
		t.Fatal(err)
	}
	if err := check(emptyPath); err == nil {
		t.Fatal("contentless manifest must be rejected")
	}

	if err := check(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must be rejected")
	}
}
