package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pepatags/internal/obsv"
)

func TestCheck(t *testing.T) {
	dir := t.TempDir()

	good := obsv.NewManifest("tagssim")
	good.Measures = map[string]float64{"throughput": 7.9}
	goodPath := filepath.Join(dir, "good.json")
	if err := good.WriteFile(goodPath); err != nil {
		t.Fatal(err)
	}
	if err := check(goodPath); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}

	alien := obsv.NewManifest("not-a-tool")
	alien.Measures = map[string]float64{"x": 1}
	alienPath := filepath.Join(dir, "alien.json")
	if err := alien.WriteFile(alienPath); err != nil {
		t.Fatal(err)
	}
	if err := check(alienPath); err == nil {
		t.Fatal("unknown tool must be rejected")
	}

	empty := obsv.NewManifest("pepa")
	emptyPath := filepath.Join(dir, "empty.json")
	if err := empty.WriteFile(emptyPath); err != nil {
		t.Fatal(err)
	}
	if err := check(emptyPath); err == nil {
		t.Fatal("contentless manifest must be rejected")
	}

	if err := check(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must be rejected")
	}
}

// TestRunCLI exercises the exit codes and the per-file failure
// summary.
func TestRunCLI(t *testing.T) {
	dir := t.TempDir()
	good := obsv.NewManifest("tagssim")
	good.Measures = map[string]float64{"throughput": 7.9}
	goodPath := filepath.Join(dir, "good.json")
	if err := good.WriteFile(goodPath); err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "missing.json")

	var out, errs bytes.Buffer
	if code := run(nil, &out, &errs); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(errs.String(), "usage:") || !strings.Contains(errs.String(), "docs/MANIFEST.md") {
		t.Fatalf("zero-arg usage should mention usage and docs/MANIFEST.md:\n%s", errs.String())
	}

	out.Reset()
	errs.Reset()
	if code := run([]string{goodPath}, &out, &errs); code != 0 {
		t.Fatalf("good manifest: exit %d, stderr %s", code, errs.String())
	}
	if !strings.Contains(out.String(), "ok "+goodPath) {
		t.Fatalf("missing OK line:\n%s", out.String())
	}

	out.Reset()
	errs.Reset()
	if code := run([]string{goodPath, badPath}, &out, &errs); code != 1 {
		t.Fatalf("mixed run: exit %d, want 1", code)
	}
	if !strings.Contains(errs.String(), "1 of 2 manifests failed") || !strings.Contains(errs.String(), badPath) {
		t.Fatalf("failure summary should name the failing file:\n%s", errs.String())
	}
}

// TestCheckAcceptsLintOnlyManifest: a pepa -lint run derives nothing,
// so its manifest carries only the lint record — valid content.
func TestCheckAcceptsLintOnlyManifest(t *testing.T) {
	m := obsv.NewManifest("pepa")
	m.Lint = &obsv.LintRecord{
		Errors:   1,
		Warnings: 2,
		Diags: []obsv.LintDiag{
			{Rule: "dead-sync", Severity: "error", File: "bad.pepa", Line: 2, Msg: "boom"},
		},
	}
	path := filepath.Join(t.TempDir(), "lint.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := check(path); err != nil {
		t.Fatalf("lint-only manifest rejected: %v", err)
	}

	// A malformed lint record must fail validation on write.
	m.Lint.Diags[0].Severity = "fatal"
	if err := m.WriteFile(path); err == nil {
		t.Fatal("bad lint severity accepted")
	}
}

// TestCheckAcceptsSweepOnlyManifest: a -sweep run without a figure
// section records only the sweep section, which is valid content.
func TestCheckAcceptsSweepOnlyManifest(t *testing.T) {
	m := obsv.NewManifest("tagseval")
	m.Sweep = &obsv.SweepRecord{
		Name:       "custom",
		SpecSHA256: "4ec9599fc203d176a301536c2e091a19bc852759b255bd6818810a42c5fed14a",
		Points:     3,
	}
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := check(path); err != nil {
		t.Fatalf("sweep-only manifest rejected: %v", err)
	}
}
