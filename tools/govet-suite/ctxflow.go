package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflowAnalyzer enforces context propagation in blocking code. A
// function that has a context in scope — a context.Context parameter,
// or an *http.Request (whose r.Context() carries the client
// disconnect) — has promised its caller it can be canceled. Two
// constructs silently break that promise:
//
//   - time.Sleep: sleeps through cancellation; a canceled request or
//     a draining server waits the full duration anyway. Use a
//     time.Timer in a select with ctx.Done().
//   - a bare channel receive (`<-ch` as a statement or assignment)
//     outside any select: blocks until the far side sends, even after
//     the context is gone. Select on the channel and ctx.Done().
//
// Receives that are themselves cancellation-aware are exempt:
// <-ctx.Done() (that is the point), timer/ticker channels (<-t.C,
// <-time.After(d) — time-bounded by construction), and every receive
// inside a select. Functions with no context in scope — CLI drivers,
// benchmarks, the simulators — are out of scope: there is nothing to
// propagate.
//
// Handlers and long loops that should take a context but don't are a
// design smell this analyzer cannot fix; what it guarantees is that
// where a context exists, blocking sites consult it.
var ctxflowAnalyzer = &Analyzer{
	Name:  "ctxflow",
	Doc:   "blocking calls must respect an in-scope context",
	Tests: true,
	Run:   runCtxflow,
}

func runCtxflow(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasContextParam(p, fd.Type) {
				checkCtxBody(p, fd.Body)
			} else {
				// No context at this level; func literals further down
				// may introduce one of their own.
				descendLookingForCtx(p, fd.Body)
			}
		}
	}
}

// descendLookingForCtx walks a context-free region and starts the
// real check at any nested func literal that introduces a context.
func descendLookingForCtx(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if hasContextParam(p, fl.Type) {
			checkCtxBody(p, fl.Body)
			return false
		}
		return true // keep looking deeper
	})
}

// checkCtxBody flags context-ignoring blocking sites in a body that
// has a context in scope. Nested func literals inherit the scope —
// they capture the context — so the walk continues into them. A
// select guards its comm clauses by construction, so only the case
// bodies are descended into.
func checkCtxBody(p *Pass, body *ast.BlockStmt) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, b := range cc.Body {
						ast.Inspect(b, visit)
					}
				}
			}
			return false
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && !isCancellationAware(p, s.X) {
				p.Reportf(s.OpPos, "bare channel receive with a context in scope: select on it and ctx.Done() so cancellation is honored")
			}
		case *ast.CallExpr:
			if isTimeSleep(p, s) {
				p.Reportf(s.Pos(), "time.Sleep with a context in scope: use a timer select with ctx.Done() so cancellation is honored")
			}
		}
		return true
	}
	ast.Inspect(body, visit)
}

// hasContextParam reports whether the function type takes a
// context.Context or an *http.Request.
func hasContextParam(p *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if isContextType(tv.Type) || isHTTPRequestPtr(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Context" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	return ok && n.Obj().Name() == "Request" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "net/http"
}

// isCancellationAware exempts receive operands that are bounded or
// are the cancellation signal itself: ctx.Done(), timer and ticker
// channels (x.C), and time.After/time.Tick calls.
func isCancellationAware(p *Pass, ch ast.Expr) bool {
	switch e := ch.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if sel.Sel.Name == "Done" {
			return true // ctx.Done() (or any Done(): the signal channel idiom)
		}
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
			fn.Pkg().Path() == "time" && (fn.Name() == "After" || fn.Name() == "Tick") {
			return true
		}
	case *ast.SelectorExpr:
		// <-t.C on a time.Timer/time.Ticker: bounded by the timer.
		if e.Sel.Name != "C" {
			return false
		}
		tv, ok := p.Info.Types[e.X]
		if !ok || tv.Type == nil {
			return false
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "time" {
			return true
		}
	}
	return false
}

func isTimeSleep(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "time"
}
