package main

import (
	"go/ast"
	"go/types"
)

// goroleakAnalyzer checks that every goroutine has a reachable
// termination path. The repo's long-running goroutines — job workers,
// heartbeat tickers, SSE pumps — all follow one of three shapes:
// `for range ch` ended by a channel close, a counter-managed body
// (WaitGroup/errgroup) that simply returns, or a `for { select }`
// loop with a ctx.Done()/stop-channel case that returns. What must
// never ship is the fourth shape: an unconditional `for {}` no
// iteration of which can leave — no return, no break out of the
// loop, no panic/os.Exit. Such a goroutine survives for the life of
// the process, pinning its closure (caches, buffers, the server
// itself) and, under churn, leaking a goroutine per call.
//
// The classic near-miss is flagged too: `for { select { case <-stop:
// break } }` — that break leaves the select, not the for, so the
// loop is exactly as unbounded as an empty one. A bare `select {}`
// blocks forever and is reported for the same reason.
//
// Named functions get the same body check as func literals, across
// package boundaries through facts: analyzing a package records a
// neverTerminates fact on each function whose body ends in an
// escape-proof loop, and `go pkg.Fn()` in a dependent package reports
// against the fact.
var goroleakAnalyzer = &Analyzer{
	Name:  "goroleak",
	Doc:   "goroutines must have a reachable termination path",
	Tests: true,
	Run:   runGoroleak,
}

// neverTerminates marks a function whose body contains an
// unconditional loop with no way out.
type neverTerminates struct{}

func (neverTerminates) AFact() {}

func runGoroleak(p *Pass) {
	// Phase 1: summarize every named function in the package and
	// export facts for the unbounded ones, so `go pkg.Fn()` elsewhere
	// sees it.
	bodies := map[*types.Func]*ast.BlockStmt{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			bodies[fn] = fd.Body
			if _, bad := unboundedLoop(fd.Body); bad {
				p.ExportObjectFact(fn, &neverTerminates{})
			}
		}
	}

	// Phase 2: check every go statement.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fun, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				if pos, bad := unboundedLoop(fun.Body); bad {
					p.Reportf(pos.Pos(), "goroutine never terminates: unconditional loop with no return or break out — add a ctx.Done()/stop-channel case or range over a closable channel")
				}
				return true
			}
			fn := staticCallee(p, gs.Call)
			if fn == nil {
				return true
			}
			if body, ok := bodies[fn]; ok {
				if _, bad := unboundedLoop(body); bad {
					p.Reportf(gs.Pos(), "goroutine never terminates: %s has an unconditional loop with no return or break out", fn.Name())
				}
			} else if p.ImportObjectFact(fn, &neverTerminates{}) {
				p.Reportf(gs.Pos(), "goroutine never terminates: %s has an unconditional loop with no return or break out", qualified(p, fn))
			}
			return true
		})
	}
}

// staticCallee resolves a call to the *types.Func it invokes, when
// that is statically known (plain function or concrete method call).
// Interface-dispatched and function-valued calls return nil.
func staticCallee(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[fun]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				if _, iface := s.Recv().Underlying().(*types.Interface); iface {
					return nil
				}
				return fn
			}
			return nil
		}
		id = fun.Sel // package-qualified function
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// unboundedLoop scans a function body for an unconditional `for {}`
// (or bare `select {}`) that no statement can leave, returning the
// offending node. Loops left by return, break binding to the loop
// itself, any labeled branch (conservatively assumed to escape),
// panic, or a terminating call (os.Exit, runtime.Goexit, log.Fatal*,
// t.Fatal*) are fine — as are conditional and range loops, whose exit
// is the condition or a channel close.
func unboundedLoop(body *ast.BlockStmt) (ast.Node, bool) {
	var found ast.Node
	var walk func(ast.Stmt)
	walkBody := func(list []ast.Stmt) {
		for _, s := range list {
			walk(s)
		}
	}
	walk = func(n ast.Stmt) {
		if found != nil || n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.LabeledStmt:
			walk(s.Stmt)
		case *ast.ForStmt:
			if s.Cond == nil && !loopCanExit(s) {
				found = s
				return
			}
			walkBody(s.Body.List)
		case *ast.RangeStmt:
			walkBody(s.Body.List)
		case *ast.BlockStmt:
			walkBody(s.List)
		case *ast.IfStmt:
			walk(s.Body)
			walk(s.Else)
		case *ast.SelectStmt:
			if len(s.Body.List) == 0 {
				found = s // select{} blocks forever
				return
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkBody(cc.Body)
				}
			}
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkBody(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkBody(cc.Body)
				}
			}
		}
	}
	walkBody(body.List)
	return found, found != nil
}

// loopCanExit reports whether any statement inside the unconditional
// loop can leave it.
func loopCanExit(loop *ast.ForStmt) bool {
	// First: anything that exits the whole function (or process) from
	// anywhere inside the loop, nested constructs included — but not
	// from nested function literals, whose control flow is their own.
	leaves := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if leaves {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			leaves = true
		case *ast.BranchStmt:
			if n.Label != nil {
				leaves = true // labeled break/continue/goto: assume it escapes
			}
		case *ast.ExprStmt:
			if isTerminatingCall(n.X) {
				leaves = true
			}
		}
		return !leaves
	})
	if leaves {
		return true
	}
	// Second: unlabeled breaks that bind to this loop. An unlabeled
	// break inside a nested for/range binds to that loop; inside a
	// select/switch it binds to the select/switch — the bug this
	// analyzer exists to catch.
	var scan func(s ast.Stmt, shadowed bool) bool
	scanBody := func(list []ast.Stmt, shadowed bool) bool {
		for _, s := range list {
			if scan(s, shadowed) {
				return true
			}
		}
		return false
	}
	scan = func(s ast.Stmt, shadowed bool) bool {
		switch s := s.(type) {
		case *ast.BranchStmt:
			return s.Tok.String() == "break" && !shadowed
		case *ast.BlockStmt:
			return scanBody(s.List, shadowed)
		case *ast.IfStmt:
			if scan(s.Body, shadowed) {
				return true
			}
			if s.Else != nil {
				return scan(s.Else, shadowed)
			}
		case *ast.ForStmt, *ast.RangeStmt:
			return false // inner loop captures its own breaks
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && scanBody(cc.Body, true) {
					return true
				}
			}
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok && scanBody(cc.Body, true) {
					return true
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok && scanBody(cc.Body, true) {
					return true
				}
			}
		case *ast.LabeledStmt:
			return scan(s.Stmt, shadowed)
		}
		return false
	}
	return scan(loop.Body, false)
}

// isTerminatingCall reports calls that never return: panic, os.Exit,
// runtime.Goexit, log.Fatal*, and the testing helpers (t.Fatal* and
// friends Goexit the goroutine).
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
