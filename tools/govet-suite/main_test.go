package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFixtureFindings runs the suite over the fixture module and
// checks every expected finding (and only those) comes out.
func TestFixtureFindings(t *testing.T) {
	var out, errs bytes.Buffer
	code := run(".", []string{"./testdata/src/bad"}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errs.String())
	}
	got := out.String()
	want := []string{
		"bad.go:17: floatcmp:",
		"bad.go:31: metricname: metric name must be a package-level const",
		`bad.go:32: metricname: metric name "Bad-Name" does not match the grammar`,
		"bad.go:34: metricname: metric name must be a package-level const",
		"bad.go:35: metricname: metric name must be a package-level const",
		"bad.go:43: spanpair: return without s.End()",
		"bad.go:50: spanpair: span s is never ended",
	}
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("missing finding %q in:\n%s", w, got)
		}
	}
	if n := strings.Count(got, ": floatcmp:"); n != 1 {
		t.Errorf("floatcmp findings = %d, want 1 (annotations must suppress)\n%s", n, got)
	}
	if n := strings.Count(got, ": metricname:"); n != 4 {
		t.Errorf("metricname findings = %d, want 4\n%s", n, got)
	}
	if n := strings.Count(got, ": spanpair:"); n != 2 {
		t.Errorf("spanpair findings = %d, want 2 (defer/conditional/escape must pass)\n%s", n, got)
	}
	if !strings.Contains(got, "7 finding(s)") {
		t.Errorf("missing summary line in:\n%s", got)
	}
}

// TestRepoIsClean is the self-gate: the suite must pass over the whole
// module, annotations included. CI runs the same check via make lint.
func TestRepoIsClean(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run("../..", []string{"./..."}, &out, &errs); code != 0 {
		t.Fatalf("repo not clean (exit %d):\n%s%s", code, out.String(), errs.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run(".", nil, &out, &errs); code != 2 {
		t.Fatalf("no patterns: exit %d, want 2", code)
	}
	if code := run(".", []string{"-bogus"}, &out, &errs); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run(".", []string{"./does-not-exist-xyz"}, &out, &errs); code != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", code)
	}
}

func TestAllowDirectiveParsing(t *testing.T) {
	for in, want := range map[string]string{
		"//vet:allow floatcmp":                    "floatcmp",
		"// vet:allow floatcmp: with a reason":    "floatcmp",
		"//vet:allow floatcmp,metricname":         "floatcmp metricname",
		"// an ordinary comment":                  "",
		"// vet:allowance is not a directive ...": "",
	} {
		got := strings.Join(allowDirective(in), " ")
		if got != want {
			t.Errorf("allowDirective(%q) = %q, want %q", in, got, want)
		}
	}
}
