package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// sentinelerrAnalyzer enforces the two halves of the sentinel-error
// contract. Sentinels — package-level `var ErrX = errors.New(...)`
// values such as sweep.ErrCanceled and linalg.ErrNotConverged — are
// compared with errors.Is, never == or != (the repo wraps errors with
// %w as they cross layers, and == silently stops matching the moment
// a wrap appears); and when a sentinel is wrapped into a new error it
// goes through %w, never %v or %s, so errors.Is keeps seeing it.
//
// Sentinel-ness crosses package boundaries through facts: the pass
// over the defining package records an isSentinel fact on the var,
// and every importing package's pass reads it back — the analyzed
// source of the importer only ever sees the var through export data,
// which has no initializer. Standard-library sentinels (io.EOF,
// sql.ErrNoRows), whose packages are never analyzed from source, are
// recognized by the Err*/EOF naming convention instead.
var sentinelerrAnalyzer = &Analyzer{
	Name:  "sentinelerr",
	Doc:   "sentinel errors: compare with errors.Is, wrap with %w",
	Tests: true,
	Run:   runSentinelerr,
}

// isSentinel marks a package-level error var initialized with
// errors.New or fmt.Errorf.
type isSentinel struct{}

func (isSentinel) AFact() {}

func runSentinelerr(p *Pass) {
	// Phase 1: find this package's own sentinels and export facts, so
	// both the checks below and every importing package see them.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					obj, ok := p.Info.Defs[name].(*types.Var)
					if !ok || obj.Parent() != p.Pkg.Scope() {
						continue
					}
					if isErrorConstructor(p, vs.Values[i]) {
						p.ExportObjectFact(obj, &isSentinel{})
					}
				}
			}
		}
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, operand := range []ast.Expr{n.X, n.Y} {
					if obj := sentinelObject(p, operand); obj != nil {
						p.Reportf(n.OpPos, "%s against sentinel %s: use errors.Is so wrapped errors still match",
							n.Op, qualified(p, obj))
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorExpr(p, n.Tag) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if obj := sentinelObject(p, e); obj != nil {
							p.Reportf(e.Pos(), "switch case compares sentinel %s with ==: use if/else with errors.Is",
								qualified(p, obj))
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(p, n)
			}
			return true
		})
	}
}

// isErrorConstructor reports whether the expression is an
// errors.New(...) or fmt.Errorf(...) call.
func isErrorConstructor(p *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() + "." + fn.Name() {
	case "errors.New", "fmt.Errorf":
		return true
	}
	return false
}

// sentinelObject resolves an expression to a package-level sentinel
// error var, or nil. Same-package and analyzed-dependency sentinels
// come from facts; unanalyzed packages (the standard library) fall
// back to the Err*/EOF naming convention on exported error vars.
func sentinelObject(p *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj, ok := p.Info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	if !isErrorType(obj.Type()) {
		return nil
	}
	if p.ImportObjectFact(obj, &isSentinel{}) {
		return obj
	}
	// No fact: the defining package was not analyzed from source
	// (stdlib or outside the load). Fall back to naming convention.
	if obj.Exported() && (strings.HasPrefix(obj.Name(), "Err") || obj.Name() == "EOF") {
		return obj
	}
	return nil
}

// checkErrorfWrap flags sentinels passed to fmt.Errorf under a %v or
// %s verb: the formatted message keeps the text but the error chain
// loses the sentinel, so downstream errors.Is goes dark.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		if verbs[i] == 'w' {
			continue
		}
		if obj := sentinelObject(p, arg); obj != nil {
			p.Reportf(arg.Pos(), "sentinel %s wrapped with %%%c: use %%w so errors.Is still matches",
				qualified(p, obj), verbs[i])
		}
	}
}

// formatVerbs extracts the verb letter for each argument-consuming
// verb of a format string, in order. Width/precision stars also
// consume arguments and are returned as '*'.
func formatVerbs(format string) []byte {
	var out []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '*' {
				out = append(out, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.[]", rune(c)) {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] != '%' {
			out = append(out, format[i])
		}
	}
	return out
}

// isErrorType reports whether t is the error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isErrorExpr reports whether the expression's static type is error.
func isErrorExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

// qualified renders an object as it reads at the use site:
// "pkgname.Name" for imported objects, bare "Name" locally.
func qualified(p *Pass, obj types.Object) string {
	if obj.Pkg() == nil || obj.Pkg() == p.Pkg {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
