// govet-suite is a project-specific static checker for the numeric
// core, in the style of go vet. It loads packages with the go command,
// type-checks them from source against compiler export data, and runs
// three analyzers:
//
//   - floatcmp: no == or != on floating-point operands outside sites
//     annotated with a //vet:allow floatcmp comment. Exact float
//     equality is almost always a latent tolerance bug in a solver.
//   - metricname: every obsv.Registry Counter/Gauge/Histogram name is
//     a package-level const matching the lowercase dotted grammar
//     ("derive.count", "sweep.point_seconds"), so the metric namespace
//     is greppable and collision-free.
//   - spanpair: every obsv span assigned to a local must reach End()
//     on all return paths (or be deferred), so trace trees are never
//     missing a close.
//
// Usage:
//
//	go run ./tools/govet-suite ./...
//	go run ./tools/govet-suite -dir some/module ./...
//
// Exit codes: 0 clean, 1 findings, 2 load or type-check failure.
//
// A site is suppressed by a trailing "//vet:allow <analyzer>" comment
// on the same line (or a comment alone on the line above), with a
// reason after the analyzer name:
//
//	if r.Weight == 1 { // vet:allow floatcmp: weights are set, not computed
//
// The suite deliberately depends only on the standard library (go/ast,
// go/types, go/importer) so it runs in offline CI without
// golang.org/x/tools.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package's syntax and type information to an
// analyzer, plus the reporting hook.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	allowed  map[string]map[int]map[string]bool // file -> line -> analyzer set
	findings *[]finding
}

type finding struct {
	pos      token.Position
	analyzer string
	msg      string
}

// Reportf records a diagnostic unless the site carries a matching
// //vet:allow annotation.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines := p.allowed[position.Filename]; lines != nil {
		if set := lines[position.Line]; set[p.Analyzer.Name] || set["all"] {
			return
		}
	}
	*p.findings = append(*p.findings, finding{position, p.Analyzer.Name, fmt.Sprintf(format, args...)})
}

// allowDirective parses "vet:allow name1,name2[: reason]" from a
// comment's text, returning nil when the comment is not a directive.
func allowDirective(text string) []string {
	text = strings.TrimSpace(strings.TrimLeft(text, "/ "))
	rest, ok := strings.CutPrefix(text, "vet:allow")
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != ':') {
		return nil
	}
	rest, _, _ = strings.Cut(rest, ":")
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// collectAllowed indexes every //vet:allow comment by file and line.
// A trailing comment suppresses its own line; a comment alone on a
// line suppresses the next line too, so directives can sit above long
// expressions.
func collectAllowed(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	add := func(file string, line int, names []string) {
		if out[file] == nil {
			out[file] = map[int]map[string]bool{}
		}
		if out[file][line] == nil {
			out[file][line] = map[string]bool{}
		}
		for _, n := range names {
			out[file][line][n] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := allowDirective(c.Text)
				if names == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, names)
				add(pos.Filename, pos.Line+1, names)
			}
		}
	}
	return out
}

var analyzers = []*Analyzer{floatcmpAnalyzer, metricnameAnalyzer, spanpairAnalyzer}

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

func run(dir string, args []string, stdout, stderr io.Writer) int {
	patterns, err := parseArgs(&dir, args)
	if err != nil {
		fmt.Fprintf(stderr, "govet-suite: %v\n", err)
		return 2
	}
	pkgs, fset, err := loadPackages(dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "govet-suite: %v\n", err)
		return 2
	}
	var findings []finding
	for _, pkg := range pkgs {
		allowed := collectAllowed(fset, pkg.files)
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.files,
				Pkg:      pkg.types,
				Info:     pkg.info,
				allowed:  allowed,
				findings: &findings,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.msg < b.msg
	})
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s:%d: %s: %s\n", f.pos.Filename, f.pos.Line, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stdout, "%d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// parseArgs handles the -dir flag by hand so package patterns can
// follow flags in any order (go-command style).
func parseArgs(dir *string, args []string) ([]string, error) {
	var patterns []string
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-dir" || args[i] == "--dir":
			if i+1 == len(args) {
				return nil, fmt.Errorf("-dir needs an argument")
			}
			i++
			*dir = args[i]
		case strings.HasPrefix(args[i], "-dir="):
			*dir = strings.TrimPrefix(args[i], "-dir=")
		case strings.HasPrefix(args[i], "-"):
			return nil, fmt.Errorf("unknown flag %s (usage: govet-suite [-dir d] <patterns>)", args[i])
		default:
			patterns = append(patterns, args[i])
		}
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("no package patterns (usage: govet-suite [-dir d] <patterns>)")
	}
	return patterns, nil
}
