// govet-suite is a project-specific static checker in the style of go
// vet, grown into a facts-driven cross-package analysis framework. It
// loads packages with the go command, type-checks them from source
// against compiler export data, analyzes them in dependency order —
// each package's pass can consult serialized facts recorded while its
// imports were analyzed — and runs seven analyzers:
//
//   - floatcmp: no == or != on floating-point operands outside sites
//     annotated with a //vet:allow floatcmp comment. Exact float
//     equality is almost always a latent tolerance bug in a solver.
//   - metricname: every obsv.Registry Counter/Gauge/Histogram name is
//     a package-level const matching the lowercase dotted grammar
//     ("derive.count", "sweep.point_seconds"), so the metric namespace
//     is greppable and collision-free.
//   - spanpair: every obsv span assigned to a local must reach End()
//     on all return paths (or be deferred), so trace trees are never
//     missing a close.
//   - lockorder: builds the mutex-acquisition graph (cross-package,
//     via facts) and flags lock-order cycles, re-acquisition of a held
//     mutex, and blocking operations — channel sends/receives,
//     selects without default, time.Sleep, WaitGroup.Wait — executed
//     while a mutex is held.
//   - goroleak: every goroutine must have a reachable termination
//     path; an unconditional `for {}` with no return/break inside a
//     `go` statement keeps the goroutine (and whatever it pins) alive
//     for the life of the process.
//   - ctxflow: functions with a context in scope (a ctx parameter or
//     an *http.Request) must not block without consulting it:
//     time.Sleep and bare channel receives outside a select ignore
//     cancellation.
//   - sentinelerr: comparisons against sentinel errors must use
//     errors.Is, and sentinels must be wrapped with %w, never %v/%s.
//
// Usage:
//
//	go run ./tools/govet-suite ./...
//	go run ./tools/govet-suite -dir some/module -tests=false ./...
//	go run ./tools/govet-suite -run lockorder,goroleak ./internal/serve
//	go run ./tools/govet-suite -json -manifest analyze.json ./...
//
// Exit codes: 0 clean, 1 findings, 2 load or type-check failure.
//
// -tests (default on) includes each package's _test.go files and
// external _test packages in the analysis. -json emits the findings
// as a pepatags/analysis/v1 report on stdout; -manifest writes a run
// manifest with an analysis section (validated by tools/manifestcheck).
//
// A site is suppressed by a trailing "//vet:allow <analyzer>" comment
// on the same line (or a comment alone on the line above), with a
// reason after the analyzer name:
//
//	if r.Weight == 1 { // vet:allow floatcmp: weights are set, not computed
//
// The suite deliberately depends only on the standard library (go/ast,
// go/types, go/importer) so it runs in offline CI without
// golang.org/x/tools.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"pepatags/internal/obsv"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// Tests marks analyzers that also run over _test.go files; the
	// numeric-style analyzers (floatcmp, metricname, spanpair) keep
	// their historical production-code-only scope, the concurrency
	// analyzers check tests too — a goroutine leak in a test harness
	// wedges CI just as surely.
	Tests bool
	Run   func(*Pass)
}

// Pass carries one package's syntax and type information to an
// analyzer, plus the reporting hook and the cross-package fact store.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	facts    *factStore
	deps     []string
	allowed  map[string]map[int]map[string]bool // file -> line -> analyzer set
	findings *[]finding
}

type finding struct {
	pos      token.Position
	analyzer string
	msg      string
}

// Reportf records a diagnostic unless the site carries a matching
// //vet:allow annotation.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines := p.allowed[position.Filename]; lines != nil {
		if set := lines[position.Line]; set[p.Analyzer.Name] || set["all"] {
			return
		}
	}
	*p.findings = append(*p.findings, finding{position, p.Analyzer.Name, fmt.Sprintf(format, args...)})
}

// allowDirective parses "vet:allow name1,name2[: reason]" from a
// comment's text, returning nil when the comment is not a directive.
func allowDirective(text string) []string {
	text = strings.TrimSpace(strings.TrimLeft(text, "/ "))
	rest, ok := strings.CutPrefix(text, "vet:allow")
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != ':') {
		return nil
	}
	rest, _, _ = strings.Cut(rest, ":")
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// collectAllowed indexes every //vet:allow comment by file and line.
// A trailing comment suppresses its own line; a comment alone on a
// line suppresses the next line too, so directives can sit above long
// expressions.
func collectAllowed(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	add := func(file string, line int, names []string) {
		if out[file] == nil {
			out[file] = map[int]map[string]bool{}
		}
		if out[file][line] == nil {
			out[file][line] = map[string]bool{}
		}
		for _, n := range names {
			out[file][line][n] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := allowDirective(c.Text)
				if names == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, names)
				add(pos.Filename, pos.Line+1, names)
			}
		}
	}
	return out
}

var analyzers = []*Analyzer{
	floatcmpAnalyzer, metricnameAnalyzer, spanpairAnalyzer,
	lockorderAnalyzer, goroleakAnalyzer, ctxflowAnalyzer, sentinelerrAnalyzer,
}

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// options are the parsed command-line settings.
type options struct {
	dir      string
	tests    bool
	jsonOut  bool
	manifest string
	run      string // comma-separated analyzer subset; empty = all
	patterns []string
}

func run(dir string, args []string, stdout, stderr io.Writer) int {
	opt := options{dir: dir, tests: true}
	if err := parseArgs(&opt, args); err != nil {
		fmt.Fprintf(stderr, "govet-suite: %v\n", err)
		return 2
	}
	active, err := selectAnalyzers(opt.run)
	if err != nil {
		fmt.Fprintf(stderr, "govet-suite: %v\n", err)
		return 2
	}
	start := time.Now()
	pkgs, fset, err := loadPackages(opt.dir, opt.patterns, opt.tests)
	if err != nil {
		fmt.Fprintf(stderr, "govet-suite: %v\n", err)
		return 2
	}

	facts := newFactStore()
	var findings, discard []finding
	targets := 0
	for _, pkg := range pkgs {
		if pkg.target {
			targets++
		}
		allowed := collectAllowed(fset, pkg.files)
		for _, a := range active {
			files := pkg.files
			if !a.Tests {
				files = nonTestFiles(fset, pkg.files)
				if len(files) == 0 {
					continue
				}
			}
			sink := &findings
			if !pkg.target {
				// Dependencies are analyzed for their facts alone;
				// their diagnostics belong to runs that target them.
				sink = &discard
			}
			a.Run(&Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    files,
				Pkg:      pkg.types,
				Info:     pkg.info,
				facts:    facts,
				deps:     pkg.deps,
				allowed:  allowed,
				findings: sink,
			})
		}
	}
	elapsed := time.Since(start)

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.msg < b.msg
	})

	if opt.manifest != "" {
		if err := writeAnalysisManifest(opt, active, targets, findings, elapsed); err != nil {
			fmt.Fprintf(stderr, "govet-suite: %v\n", err)
			return 2
		}
	}
	if opt.jsonOut {
		if err := writeJSONReport(stdout, active, targets, findings, elapsed); err != nil {
			fmt.Fprintf(stderr, "govet-suite: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n", f.pos.Filename, f.pos.Line, f.analyzer, f.msg)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "%d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// nonTestFiles filters the package's syntax down to non-_test.go
// files for analyzers with the historical production-only scope.
func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// selectAnalyzers resolves the -run subset (comma-separated names);
// empty keeps the full suite.
func selectAnalyzers(names string) ([]*Analyzer, error) {
	if names == "" {
		return analyzers, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			all := make([]string, 0, len(analyzers))
			for _, a := range analyzers {
				all = append(all, a.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(all, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// analysisReport is the -json output, schema pepatags/analysis/v1:
// the machine-readable face of a suite run, consumed by CI (make
// analyze) and archived next to run manifests.
type analysisReport struct {
	Schema     string            `json:"schema"`
	Analyzers  []string          `json:"analyzers"`
	Packages   int               `json:"packages"`
	Findings   []reportedFinding `json:"findings"`
	ElapsedSec float64           `json:"elapsed_sec"`
}

type reportedFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// analysisSchema identifies the -json report layout.
const analysisSchema = "pepatags/analysis/v1"

func buildReport(active []*Analyzer, targets int, findings []finding, elapsed time.Duration) analysisReport {
	rep := analysisReport{
		Schema:     analysisSchema,
		Packages:   targets,
		Findings:   make([]reportedFinding, 0, len(findings)),
		ElapsedSec: elapsed.Seconds(),
	}
	for _, a := range active {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, reportedFinding{
			Analyzer: f.analyzer, File: f.pos.Filename, Line: f.pos.Line, Col: f.pos.Column, Message: f.msg,
		})
	}
	return rep
}

func writeJSONReport(w io.Writer, active []*Analyzer, targets int, findings []finding, elapsed time.Duration) error {
	b, err := json.MarshalIndent(buildReport(active, targets, findings, elapsed), "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// writeAnalysisManifest records the run as a pepatags/run-manifest/v1
// manifest with an analysis section, so suite runs land in the same
// validated record stream as solver and sweep runs.
func writeAnalysisManifest(opt options, active []*Analyzer, targets int, findings []finding, elapsed time.Duration) error {
	m := obsv.NewManifest("govet-suite")
	m.Params = map[string]any{"patterns": strings.Join(opt.patterns, " "), "tests": opt.tests}
	rec := &obsv.AnalysisRecord{
		Packages:   targets,
		Findings:   len(findings),
		ElapsedSec: elapsed.Seconds(),
	}
	for _, a := range active {
		rec.Analyzers = append(rec.Analyzers, a.Name)
	}
	if len(findings) > 0 {
		rec.ByAnalyzer = map[string]int{}
		for _, f := range findings {
			rec.ByAnalyzer[f.analyzer]++
		}
	}
	m.Analysis = rec
	return m.WriteFile(opt.manifest)
}

// parseArgs handles flags by hand so package patterns can follow
// flags in any order (go-command style).
func parseArgs(opt *options, args []string) error {
	usage := "usage: govet-suite [-dir d] [-tests=bool] [-run names] [-json] [-manifest path] <patterns>"
	needValue := func(i *int) (string, error) {
		if *i+1 == len(args) {
			return "", fmt.Errorf("%s needs an argument (%s)", args[*i], usage)
		}
		*i++
		return args[*i], nil
	}
	var err error
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch {
		case arg == "-dir" || arg == "--dir":
			if opt.dir, err = needValue(&i); err != nil {
				return err
			}
		case strings.HasPrefix(arg, "-dir="):
			opt.dir = strings.TrimPrefix(arg, "-dir=")
		case arg == "-run" || arg == "--run":
			if opt.run, err = needValue(&i); err != nil {
				return err
			}
		case strings.HasPrefix(arg, "-run="):
			opt.run = strings.TrimPrefix(arg, "-run=")
		case arg == "-manifest" || arg == "--manifest":
			if opt.manifest, err = needValue(&i); err != nil {
				return err
			}
		case strings.HasPrefix(arg, "-manifest="):
			opt.manifest = strings.TrimPrefix(arg, "-manifest=")
		case arg == "-json" || arg == "--json":
			opt.jsonOut = true
		case arg == "-tests" || arg == "--tests":
			opt.tests = true
		case strings.HasPrefix(arg, "-tests="):
			switch v := strings.TrimPrefix(arg, "-tests="); v {
			case "true", "1":
				opt.tests = true
			case "false", "0":
				opt.tests = false
			default:
				return fmt.Errorf("bad -tests value %q (want true or false)", v)
			}
		case strings.HasPrefix(arg, "-"):
			return fmt.Errorf("unknown flag %s (%s)", arg, usage)
		default:
			opt.patterns = append(opt.patterns, arg)
		}
	}
	if len(opt.patterns) == 0 {
		return fmt.Errorf("no package patterns (%s)", usage)
	}
	return nil
}
