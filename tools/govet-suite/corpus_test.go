package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the corpus golden files from current analyzer output")

// corpusCases pairs each analyzer with its fixture package. The
// fixture's dependencies (lockdep, goroleakdep, sentineldep) are
// pulled in by the loader itself — their facts feeding the target
// package's pass is the cross-package behavior under test.
var corpusCases = []struct {
	analyzer string
	pattern  string
}{
	{"lockorder", "./testdata/src/lockorder"},
	{"goroleak", "./testdata/src/goroleak"},
	{"ctxflow", "./testdata/src/ctxflow"},
	{"sentinelerr", "./testdata/src/sentinelerr"},
}

// TestAnalyzerCorpus golden-diffs each analyzer's full diagnostic
// output — positions included — over its fixture package. Negative
// cases and //vet:allow sites are covered by the same diff: a
// spurious diagnostic changes the output. Regenerate with
//
//	go test ./tools/govet-suite -run Corpus -update
func TestAnalyzerCorpus(t *testing.T) {
	for _, tc := range corpusCases {
		t.Run(tc.analyzer, func(t *testing.T) {
			var out, errs bytes.Buffer
			code := run(".", []string{"-run", tc.analyzer, tc.pattern}, &out, &errs)
			if code == 2 {
				t.Fatalf("load failed:\n%s", errs.String())
			}
			if code != 1 {
				t.Errorf("exit %d, want 1: every corpus has positive cases", code)
			}
			got := normalizeCorpusPaths(out.String())
			golden := filepath.Join("testdata", "golden", tc.analyzer+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// normalizeCorpusPaths strips the absolute checkout prefix from
// finding positions so golden files are machine-independent.
func normalizeCorpusPaths(s string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(s, "\n") {
		if i := strings.Index(line, "testdata/src/"); i > 0 {
			line = line[i:]
		}
		b.WriteString(line)
	}
	return b.String()
}

// TestCrossPackageFacts pins the acceptance property directly: a
// diagnostic that is only derivable from an imported package's
// behavior (sentineldep.Finished has no "Err" prefix; goroleakdep's
// spinner and lockdep's lock summaries live behind export data) must
// be reported in the importing package.
func TestCrossPackageFacts(t *testing.T) {
	for _, tc := range []struct {
		analyzer, pattern, want string
	}{
		{"sentinelerr", "./testdata/src/sentinelerr",
			"== against sentinel sentineldep.Finished"},
		{"goroleak", "./testdata/src/goroleak",
			"goroleakdep.SpinForever has an unconditional loop"},
		{"lockorder", "./testdata/src/lockorder",
			"creates a lock-order cycle: pepatags/tools/govet-suite/testdata/src/lockdep.Global -> pepatags/tools/govet-suite/testdata/src/lockdep.Store.mu"},
	} {
		var out, errs bytes.Buffer
		if code := run(".", []string{"-run", tc.analyzer, tc.pattern}, &out, &errs); code != 1 {
			t.Fatalf("%s: exit %d, want 1\n%s", tc.analyzer, code, errs.String())
		}
		if !strings.Contains(out.String(), tc.want) {
			t.Errorf("%s: missing cross-package diagnostic %q in:\n%s", tc.analyzer, tc.want, out.String())
		}
	}
}
