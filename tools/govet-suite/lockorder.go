package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorderAnalyzer builds a mutex-acquisition graph and enforces two
// properties the race detector cannot check (deadlocks don't race):
//
//  1. A consistent global lock order. Every time lock B is acquired
//     while lock A is held — directly, or through a call whose callee
//     acquires B — the analyzer records the edge A→B. A cycle in the
//     merged graph (A→B here, B→A somewhere else, possibly in another
//     package) is a deadlock waiting for the right interleaving.
//  2. No blocking inside a critical section. Channel sends and
//     receives, selects without a default, time.Sleep and
//     WaitGroup.Wait while a mutex is held stall every other goroutine
//     that needs the lock — in this repo that means the admission
//     gate, the event log, and the sweep engine all stop at once.
//
// Locks are identified structurally — "pkg.Type.field" for a mutex
// field, "pkg.var" for a package-level mutex — so every instance of a
// type shares one graph node: the ordering discipline is per-field,
// which is how the code actually reasons about it.
//
// Cross-package edges come from facts. Analyzing a package exports a
// lockSummary fact per function (the set of locks it may acquire,
// transitively) and a lockGraph package fact (its edges). A dependent
// package's pass imports both, so `s.mu.Lock(); dep.Helper()` adds
// the edge s.mu→(whatever Helper locks) and cycles spanning packages
// are found where the closing edge is written.
//
// Deliberately exempt: close(ch) (never blocks), sync.Cond.Wait
// (releases the lock by contract), and select with a default clause
// (non-blocking by construction — the repo's try-send idiom).
var lockorderAnalyzer = &Analyzer{
	Name:  "lockorder",
	Doc:   "mutex acquisition: consistent order, no blocking while held",
	Tests: true,
	Run:   runLockorder,
}

// lockSummary is the set of lock IDs a function may acquire,
// including through calls, recorded as an object fact so callers in
// other packages can see through the call.
type lockSummary struct {
	Locks []string
}

func (lockSummary) AFact() {}

// lockGraph is a package fact: the acquired-while-held edges observed
// in the package's bodies.
type lockGraph struct {
	Edges map[string][]string
}

func (lockGraph) AFact() {}

type lockEdge struct{ from, to string }

type heldLock struct {
	id    string
	write bool
	pos   token.Pos
}

type lockFnInfo struct {
	fn      *types.Func
	body    *ast.BlockStmt
	direct  []string
	callees []*types.Func
}

func runLockorder(p *Pass) {
	// Pass A: per-function direct acquires and static callees.
	var fns []*lockFnInfo
	byFunc := map[*types.Func]*lockFnInfo{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &lockFnInfo{fn: fn, body: fd.Body}
			collectLockInfo(p, fd.Body, fi)
			fns = append(fns, fi)
			byFunc[fn] = fi
		}
	}

	// Transitive summaries: same-package fixpoint, imported facts for
	// external callees.
	summary := map[*types.Func]map[string]bool{}
	for _, fi := range fns {
		s := map[string]bool{}
		for _, id := range fi.direct {
			s[id] = true
		}
		summary[fi.fn] = s
	}
	external := func(fn *types.Func) []string {
		var ls lockSummary
		if p.ImportObjectFact(fn, &ls) {
			return ls.Locks
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			s := summary[fi.fn]
			for _, callee := range fi.callees {
				var locks []string
				if _, same := byFunc[callee]; same {
					locks = sortedLockSet(summary[callee])
				} else {
					locks = external(callee)
				}
				for _, id := range locks {
					if !s[id] {
						s[id] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fi := range fns {
		if len(summary[fi.fn]) > 0 {
			p.ExportObjectFact(fi.fn, &lockSummary{Locks: sortedLockSet(summary[fi.fn])})
		}
	}

	// Pass B: held-set walk — blocking reports, self-deadlocks, edges.
	w := &lockWalker{p: p, byFunc: byFunc, summary: summary, edges: map[lockEdge]token.Pos{}}
	for _, fi := range fns {
		var held []heldLock
		w.walkStmts(fi.body.List, &held)
	}

	// Merge this package's edges with every dependency's graph fact.
	merged := map[string]map[string]bool{}
	add := func(u, v string) {
		if merged[u] == nil {
			merged[u] = map[string]bool{}
		}
		merged[u][v] = true
	}
	for e := range w.edges {
		add(e.from, e.to)
	}
	for _, dep := range p.Deps() {
		var g lockGraph
		if p.ImportPackageFact(dep, &g) {
			for u, vs := range g.Edges {
				for _, v := range vs {
					add(u, v)
				}
			}
		}
	}
	if len(w.edges) > 0 {
		own := map[string][]string{}
		for e := range w.edges {
			own[e.from] = append(own[e.from], e.to)
		}
		for u := range own {
			sort.Strings(own[u])
		}
		p.ExportPackageFact(&lockGraph{Edges: own})
	}

	// A local edge u→v closes a cycle iff v reaches u in the merged
	// graph. Only local edges are reported, so a cycle is diagnosed in
	// the package that writes its closing edge, once.
	for e, pos := range w.edges {
		if path := lockPath(merged, e.to, e.from); path != nil {
			cycle := append([]string{e.from}, path...)
			p.Reportf(pos, "acquiring %s while holding %s creates a lock-order cycle: %s",
				e.to, e.from, strings.Join(cycle, " -> "))
		}
	}
}

// collectLockInfo gathers direct lock acquisitions and static callees
// from a body. Func literals and go statements are skipped: a literal
// runs under its own held-set walk, and a spawned goroutine's locks
// are not acquired by the caller.
func collectLockInfo(p *Pass, body *ast.BlockStmt, fi *lockFnInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					if fn.Name() == "Lock" || fn.Name() == "RLock" {
						if id := lockExprID(p, sel.X); id != "" {
							fi.direct = append(fi.direct, id)
						}
					}
					return true
				}
			}
			if fn := staticCallee(p, n); fn != nil {
				fi.callees = append(fi.callees, fn)
			}
		}
		return true
	})
}

type lockWalker struct {
	p       *Pass
	byFunc  map[*types.Func]*lockFnInfo
	summary map[*types.Func]map[string]bool
	edges   map[lockEdge]token.Pos
}

func (w *lockWalker) addEdge(from, to string, pos token.Pos) {
	e := lockEdge{from, to}
	if _, ok := w.edges[e]; !ok {
		w.edges[e] = pos
	}
}

func copyHeld(held *[]heldLock) []heldLock {
	return append([]heldLock(nil), (*held)...)
}

func (w *lockWalker) walkStmts(list []ast.Stmt, held *[]heldLock) {
	for _, s := range list {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held *[]heldLock) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.scanExpr(s.X, held)
	case *ast.SendStmt:
		if len(*held) > 0 {
			w.p.Reportf(s.Arrow, "channel send while holding %s: move it outside the critical section or use a select with default", heldDesc(*held))
		}
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
	case *ast.IfStmt:
		w.walkStmt(s.Init, held)
		w.scanExpr(s.Cond, held)
		bh := copyHeld(held)
		w.walkStmts(s.Body.List, &bh)
		if s.Else != nil {
			eh := copyHeld(held)
			w.walkStmt(s.Else, &eh)
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.ForStmt:
		w.walkStmt(s.Init, held)
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		bh := copyHeld(held)
		w.walkStmts(s.Body.List, &bh)
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		bh := copyHeld(held)
		w.walkStmts(s.Body.List, &bh)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, held)
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.scanExpr(e, held)
				}
				ch := copyHeld(held)
				w.walkStmts(cc.Body, &ch)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ch := copyHeld(held)
				w.walkStmts(cc.Body, &ch)
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) && len(*held) > 0 {
			w.p.Reportf(s.Pos(), "select without default while holding %s: the critical section blocks on channel traffic", heldDesc(*held))
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ch := copyHeld(held)
				w.walkStmts(cc.Body, &ch)
			}
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end —
		// which is exactly what leaving it in the held set models. A
		// deferred func literal runs at return with an unknowable held
		// set; walk it with an empty one.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			var none []heldLock
			w.walkStmts(fl.Body.List, &none)
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a, held)
		}
	case *ast.GoStmt:
		// The goroutine's body runs concurrently: the caller's held
		// locks are not held there.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			var none []heldLock
			w.walkStmts(fl.Body.List, &none)
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a, held)
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	}
}

// scanExpr handles calls (lock ops, blocking ops, summary edges) and
// bare receives inside an expression. Func literals get their own
// empty held set.
func (w *lockWalker) scanExpr(e ast.Expr, held *[]heldLock) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			var none []heldLock
			w.walkStmts(n.Body.List, &none)
			return false
		case *ast.CallExpr:
			w.handleCall(n, held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(*held) > 0 {
				w.p.Reportf(n.OpPos, "channel receive while holding %s: move it outside the critical section", heldDesc(*held))
			}
		}
		return true
	})
}

func (w *lockWalker) handleCall(call *ast.CallExpr, held *[]heldLock) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if ok {
		if fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			switch fn.Name() {
			case "Lock", "RLock":
				if id := lockExprID(w.p, sel.X); id != "" {
					w.acquire(id, fn.Name() == "Lock", sel.Sel.Pos(), held)
				}
			case "Unlock", "RUnlock":
				if id := lockExprID(w.p, sel.X); id != "" {
					release(id, held)
				}
			case "Wait":
				// Cond.Wait releases its locker by contract; exempt.
				// WaitGroup.Wait does not.
				if syncRecvName(fn) == "WaitGroup" && len(*held) > 0 {
					w.p.Reportf(call.Pos(), "WaitGroup.Wait while holding %s: waiters that need the lock deadlock", heldDesc(*held))
				}
			}
			return
		}
		if isTimeSleep(w.p, call) {
			if len(*held) > 0 {
				w.p.Reportf(call.Pos(), "time.Sleep while holding %s: every goroutine needing the lock stalls for the duration", heldDesc(*held))
			}
			return
		}
	}
	if len(*held) == 0 {
		return
	}
	fn := staticCallee(w.p, call)
	if fn == nil {
		return
	}
	var locks []string
	if _, same := w.byFunc[fn]; same {
		locks = sortedLockSet(w.summary[fn])
	} else {
		var ls lockSummary
		if w.p.ImportObjectFact(fn, &ls) {
			locks = ls.Locks
		}
	}
	for _, to := range locks {
		for _, h := range *held {
			if h.id == to {
				w.p.Reportf(call.Pos(), "call to %s may acquire %s, which is already held here: potential self-deadlock", qualified(w.p, fn), to)
			} else {
				w.addEdge(h.id, to, call.Pos())
			}
		}
	}
}

func (w *lockWalker) acquire(id string, write bool, pos token.Pos, held *[]heldLock) {
	for _, h := range *held {
		if h.id == id {
			// Re-acquiring a held lock deadlocks when either side is a
			// write lock. RLock-after-RLock is left alone: legal unless
			// a writer intervenes, and the repo never nests read locks.
			if write || h.write {
				w.p.Reportf(pos, "acquiring %s while already holding it: self-deadlock", id)
			}
		} else {
			w.addEdge(h.id, id, pos)
		}
	}
	*held = append(*held, heldLock{id: id, write: write, pos: pos})
}

func release(id string, held *[]heldLock) {
	for i := len(*held) - 1; i >= 0; i-- {
		if (*held)[i].id == id {
			*held = append((*held)[:i], (*held)[i+1:]...)
			return
		}
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func heldDesc(held []heldLock) string {
	ids := make([]string, len(held))
	for i, h := range held {
		ids[i] = h.id
	}
	return strings.Join(ids, ", ")
}

// lockExprID names a lock structurally: "pkg.Type.field" for a mutex
// field (every instance of the type shares the node), "pkg.var" for a
// package-level mutex, "local.name" for a function-local one. An
// empty string means the expression is too dynamic to name (map
// index, function result) and the acquisition is ignored.
func lockExprID(p *Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return lockExprID(p, x.X)
	case *ast.UnaryExpr:
		return lockExprID(p, x.X)
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// Local or receiver: if its type is named (an embedded-mutex
		// receiver, as in s.Lock()), the type is the lock's identity.
		if n, ok := lockDeref(v.Type()).(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() != "sync" {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name()
		}
		return "local." + v.Name()
	case *ast.SelectorExpr:
		fobj, ok := p.Info.Uses[x.Sel].(*types.Var)
		if !ok {
			return ""
		}
		if tv, ok := p.Info.Types[x.X]; ok && tv.Type != nil {
			if n, ok := lockDeref(tv.Type).(*types.Named); ok && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + fobj.Name()
			}
		}
		if fobj.Pkg() != nil && fobj.Parent() == fobj.Pkg().Scope() {
			return fobj.Pkg().Path() + "." + fobj.Name()
		}
		return ""
	}
	return ""
}

func lockDeref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// syncRecvName returns the receiver type name of a sync method
// ("Mutex", "RWMutex", "Cond", "WaitGroup", ...), or "".
func syncRecvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n, ok := lockDeref(sig.Recv().Type()).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// lockPath finds a path from→to in the merged edge graph (BFS), or
// nil. Used to close and print cycles.
func lockPath(g map[string]map[string]bool, from, to string) []string {
	parent := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == to {
			var rev []string
			for n := to; ; n = parent[n] {
				rev = append(rev, n)
				if n == from {
					break
				}
			}
			path := make([]string, len(rev))
			for i, n := range rev {
				path[len(rev)-1-i] = n
			}
			return path
		}
		next := sortedLockSet(g[u])
		for _, v := range next {
			if _, seen := parent[v]; !seen {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return nil
}

func sortedLockSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
