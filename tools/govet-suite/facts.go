package main

import (
	"encoding/json"
	"fmt"
	"go/types"
)

// A Fact is a piece of information an analyzer learns about an object
// or package and wants to make visible to later passes over packages
// that import it — "this var is a sentinel error", "this method
// acquires these locks". Facts cross package boundaries where syntax
// cannot: a dependency's source is long gone by the time a dependent
// is analyzed (imports resolve through compiler export data), so the
// driver carries facts between passes instead, serialized per package
// exactly like go/analysis does between processes.
//
// Fact types must be JSON-serializable structs; the marker method ties
// the type to the mechanism.
type Fact interface{ AFact() }

// factStore holds every exported fact, serialized. Keys are
// (analyzer, object key) where the object key is a stable path —
// "pkg/path.Name" for package-level objects, "pkg/path.(Type).Method"
// for methods, "pkg/path" for package facts — so an object seen
// through export data later resolves to the fact recorded when its
// defining package was analyzed from source.
type factStore struct {
	byAnalyzer map[string]map[string]json.RawMessage
}

func newFactStore() *factStore {
	return &factStore{byAnalyzer: map[string]map[string]json.RawMessage{}}
}

func (s *factStore) set(analyzer, key string, f Fact) error {
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("serializing %s fact for %s: %v", analyzer, key, err)
	}
	m := s.byAnalyzer[analyzer]
	if m == nil {
		m = map[string]json.RawMessage{}
		s.byAnalyzer[analyzer] = m
	}
	m[key] = b
	return nil
}

func (s *factStore) get(analyzer, key string, f Fact) bool {
	b, ok := s.byAnalyzer[analyzer][key]
	if !ok {
		return false
	}
	return json.Unmarshal(b, f) == nil
}

// objectKey builds the stable fact key for an object: package path
// plus name, with the receiver type spliced in for methods. Returns
// "" for objects facts cannot attach to (locals, builtins).
func objectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkg := canonicalPath(obj.Pkg().Path())
	if f, ok := obj.(*types.Func); ok {
		if recv := f.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				return pkg + ".(" + n.Obj().Name() + ")." + f.Name()
			}
			return ""
		}
	}
	return pkg + "." + obj.Name()
}

// ExportObjectFact records a fact about obj, visible to this pass and
// to every later pass over a package that imports this one.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	key := objectKey(obj)
	if key == "" {
		return
	}
	if err := p.facts.set(p.Analyzer.Name, key, f); err != nil {
		panic(err) // a non-serializable fact type is an analyzer bug
	}
}

// ImportObjectFact loads the fact recorded for obj into f, reporting
// whether one exists. The object may come from source or from export
// data; both resolve to the same key.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	key := objectKey(obj)
	return key != "" && p.facts.get(p.Analyzer.Name, key, f)
}

// ExportPackageFact records a fact about the package being analyzed.
func (p *Pass) ExportPackageFact(f Fact) {
	if err := p.facts.set(p.Analyzer.Name, canonicalPath(p.Pkg.Path()), f); err != nil {
		panic(err)
	}
}

// ImportPackageFact loads the package fact of pkgPath into f,
// reporting whether one exists. Dependencies are analyzed before
// dependents, so a dependency's package facts are always in place by
// the time its importers run.
func (p *Pass) ImportPackageFact(pkgPath string, f Fact) bool {
	return p.facts.get(p.Analyzer.Name, canonicalPath(pkgPath), f)
}

// Deps returns the canonical import paths of every package this one
// depends on (transitively), sorted. Analyzers use it to gather the
// package facts of the whole dependency cone.
func (p *Pass) Deps() []string { return p.deps }
