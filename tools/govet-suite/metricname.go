package main

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// obsvPath is the package whose Registry methods register metrics.
const obsvPath = "pepatags/internal/obsv"

// metricGrammar is the naming grammar: at least two lowercase dotted
// segments, "subsystem.metric[_unit]". Indexed families substitute a
// %d verb inside a segment ("sim.node%d.queue"), which is stripped
// before matching.
var metricGrammar = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

// metricnameAnalyzer enforces that every obsv counter/gauge/histogram
// name is a package-level const matching the grammar. Consts keep the
// metric namespace greppable from one declaration block per package;
// the grammar keeps dashboards and the manifest diff-friendly.
var metricnameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc:  "metric names must be package-level consts matching subsystem.metric",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !isRegistryMethod(p, sel) {
					return true
				}
				checkMetricName(p, call.Args[0])
				return true
			})
		}
	},
}

// isRegistryMethod reports whether sel is Counter, Gauge or Histogram
// on an obsv *Registry receiver.
func isRegistryMethod(p *Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	s, ok := p.Info.Selections[sel]
	if !ok {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Registry" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == obsvPath
}

func checkMetricName(p *Pass, arg ast.Expr) {
	// Indexed families go through fmt.Sprintf; the format string is
	// held to the same const-and-grammar standard.
	if call, ok := arg.(*ast.CallExpr); ok && isSprintf(p, call) && len(call.Args) > 0 {
		checkMetricName(p, call.Args[0])
		return
	}
	obj := constObject(p, arg)
	if obj == nil {
		p.Reportf(arg.Pos(), "metric name must be a package-level const (see docs/LINT.md#metric-naming)")
		return
	}
	if obj.Val().Kind() != constant.String {
		return
	}
	name := constant.StringVal(obj.Val())
	if !metricGrammar.MatchString(strings.ReplaceAll(name, "%d", "")) {
		p.Reportf(arg.Pos(), "metric name %q does not match the grammar subsystem.metric (lowercase dotted segments)", name)
	}
}

// constObject resolves an identifier or qualified identifier to a
// package-level constant, or nil.
func constObject(p *Pass, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	c, ok := p.Info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Parent() != c.Pkg().Scope() {
		return nil
	}
	return c
}

func isSprintf(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" {
		return false
	}
	f, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && f.Pkg() != nil && f.Pkg().Path() == "fmt"
}
