package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader
// needs: where the sources live, where the compiler export data is,
// whether the package was named by the patterns or only pulled in as a
// dependency, and — under -tests — which test variant it is.
type listedPackage struct {
	ImportPath string
	Dir        string
	// GoFiles is the compiled file set: for a test-augmented variant
	// ("p [p.test]") go list already folds the _test.go files in, so
	// it is always the right list to parse. (TestGoFiles on a plain
	// entry is metadata about files that are NOT part of that build.)
	GoFiles   []string
	Export    string
	DepOnly   bool
	Standard  bool
	ForTest   string
	ImportMap map[string]string
	Deps      []string
	Error     *struct{ Err string }
}

// loadedPackage is one package after parsing and type-checking, in
// dependency order. target marks packages named by the patterns (the
// ones whose findings are reported); the rest are analyzed only so
// their facts are available to dependents.
type loadedPackage struct {
	path   string // canonical import path (test-variant brackets stripped)
	files  []*ast.File
	types  *types.Package
	info   *types.Info
	target bool
	deps   []string // canonical paths of transitive dependencies
}

// canonicalPath strips the test-variant suffix go list attaches to
// packages rebuilt for a test binary: "p [p.test]" -> "p".
func canonicalPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// loadPackages resolves the patterns with `go list -deps -export`
// (plus -test when tests is set), then type-checks every in-module
// package from source in dependency order. Dependencies outside the
// module — the standard library — are never re-parsed: their compiler
// export data, already present in the build cache, is fed to the gc
// importer. That keeps the whole suite offline and dependency-free.
//
// With tests on, each target package's in-package _test.go files are
// type-checked together with its regular sources (go list's
// test-variant entry), and external _test packages are loaded as
// packages of their own, so the analyzers see test goroutines, locks
// and error handling too.
func loadPackages(dir string, patterns []string, tests bool) ([]*loadedPackage, *token.FileSet, error) {
	listed, err := goList(dir, patterns, tests)
	if err != nil {
		return nil, nil, err
	}
	exports := map[string]string{}
	// hasVariant marks canonical paths that also appear as a
	// test-augmented variant; the variant subsumes the plain package's
	// sources, so the plain entry is skipped to avoid duplicate
	// findings and duplicate fact exports.
	hasVariant := map[string]bool{}
	for _, p := range listed {
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ForTest != "" && canonicalPath(p.ImportPath) == p.ForTest {
			hasVariant[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var out []*loadedPackage
	for _, p := range listed {
		if p.Standard {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test-main package
		}
		if hasVariant[p.ImportPath] && p.ForTest == "" {
			continue // superseded by its test-augmented variant
		}
		if c := canonicalPath(p.ImportPath); p.ForTest != "" && c != p.ForTest && c != p.ForTest+"_test" {
			// A dependency rebuilt against some other package's test
			// variant (it imports the package under test). The plain
			// build of the same package carries the same source; only
			// its export data is kept, for ImportMap resolution.
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		lp, err := typecheck(fset, exports, p)
		if err != nil {
			return nil, nil, err
		}
		lp.target = !p.DepOnly
		out = append(out, lp)
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("patterns %v matched no analyzable packages", patterns)
	}
	return out, fset, nil
}

func goList(dir string, patterns []string, tests bool) ([]*listedPackage, error) {
	args := []string{"list", "-deps", "-export", "-json"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// typecheck parses one package's sources (with comments, for
// //vet:allow) and runs the standard type checker over them, resolving
// imports through export data. Each package gets its own importer so
// go list's per-package ImportMap applies: an external _test package
// importing the package under test must see the test-augmented export
// data, not the plain build. Any type error is fatal: the suite's
// answers are only as good as the type information.
func typecheck(fset *token.FileSet, exports map[string]string, p *listedPackage) (*loadedPackage, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (imported by %s): the package did not build — run 'go build ./...' and fix compile errors first", path, p.ImportPath)
		}
		return os.Open(f)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	path := canonicalPath(p.ImportPath)
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	deps := make([]string, 0, len(p.Deps))
	seen := map[string]bool{}
	for _, d := range p.Deps {
		if c := canonicalPath(d); !seen[c] {
			seen[c] = true
			deps = append(deps, c)
		}
	}
	sort.Strings(deps)
	return &loadedPackage{path: path, files: files, types: pkg, info: info, deps: deps}, nil
}
