package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader
// needs: where the sources live, where the compiler export data is,
// and whether the package was named by the patterns or only pulled in
// as a dependency.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
}

// loadedPackage is one target package after parsing and type-checking.
type loadedPackage struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loadPackages resolves the patterns with `go list -deps -export`,
// then type-checks each named (non-dependency) package from source.
// Dependencies — the standard library included — are never re-parsed:
// their compiler export data, already present in the build cache from
// the surrounding `go build`, is fed to the gc importer. That keeps
// the whole suite offline and dependency-free.
func loadPackages(dir string, patterns []string) ([]*loadedPackage, *token.FileSet, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*loadedPackage
	for _, p := range targets {
		lp, err := typecheck(fset, imp, p)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, lp)
	}
	return out, fset, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// typecheck parses a target package's non-test sources (with
// comments, for //vet:allow) and runs the standard type checker over
// them, resolving imports through export data. Any type error is
// fatal: the suite's answers are only as good as the type information.
func typecheck(fset *token.FileSet, imp types.Importer, p *listedPackage) (*loadedPackage, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &loadedPackage{path: p.ImportPath, files: files, types: pkg, info: info}, nil
}
