// Package goroleak is the corpus for the goroleak analyzer:
// goroutines with no reachable termination path, the
// break-binds-to-select near-miss, and the loop shapes that are fine.
package goroleak

import (
	"os"

	"pepatags/tools/govet-suite/testdata/src/goroleakdep"
)

func spin() {
	for {
	}
}

// Leaks spawns goroutines that can never stop.
func Leaks(ch chan int, stop chan struct{}) {
	go func() {
		for { // want: no way out
		}
	}()
	go func() {
		for { // want: break leaves the select, not the for
			select {
			case <-stop:
				break
			}
		}
	}()
	go spin()                    // want: named local spinner
	go goroleakdep.SpinForever() // want: imported spinner, via fact
	go func() {
		select {} // want: blocks forever
	}()
	_ = ch
}

// Fine spawns goroutines with real termination paths.
func Fine(jobs chan int, stop chan struct{}) {
	go func() {
		for range jobs { // ends when jobs is closed
		}
	}()
	go func() {
		for {
			select {
			case <-stop:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
	go func() {
		for {
			if len(jobs) == 0 {
				break
			}
		}
	}()
	go func() {
	loop:
		for {
			select {
			case <-stop:
				break loop // labeled: leaves the for
			}
		}
	}()
	go func() {
		for {
			os.Exit(1)
		}
	}()
	go goroleakdep.Drain(jobs)
	go spin() //vet:allow goroleak: fixture exercises the suppression path
}
