// Package sentineldep is a corpus dependency for the sentinelerr
// analyzer.
package sentineldep

import "errors"

// Finished reports normal end of stream. Deliberately NOT named
// "Err…": an importer can only learn it is a sentinel through the
// exported fact, which is exactly what the corpus exercises.
var Finished = errors.New("sentineldep: finished")
