// Package bad is the govet-suite test fixture: every analyzer must
// flag the lines marked "want" below and stay quiet on the rest. The
// expectations live in tools/govet-suite/main_test.go.
package bad

import (
	"fmt"

	"pepatags/internal/obsv"
)

const goodName = "bad.count"
const uglyName = "Bad-Name"
const nodeFmt = "bad.node%d.queue"

func Floats(a, b float64) bool {
	if a == b { // want floatcmp
		return true
	}
	if a != 0 { //vet:allow floatcmp: exact guard, allowed
		return false
	}
	//vet:allow floatcmp: directive on the line above also suppresses
	return a == 1
}

func Ints(a, b int) bool { return a == b }

func Metrics(r *obsv.Registry, i int) {
	r.Counter(goodName).Inc()
	r.Counter("bad.literal").Inc()               // want metricname: literal
	r.Gauge(uglyName).Set(1)                     // want metricname: grammar
	r.Histogram(fmt.Sprintf(nodeFmt, i)).Count() // const %d family is fine
	r.Counter(fmt.Sprintf("bad.n%d", i)).Inc()   // want metricname: literal format
	r.Counter(localName()).Inc()                 // want metricname: dynamic
}

func localName() string { return "bad.local" }

func SpanLeaks(cond bool) error {
	s := obsv.NewSpan("leaky")
	if cond {
		return fmt.Errorf("boom") // want spanpair: return before End
	}
	s.End()
	return nil
}

func SpanNeverEnded() {
	s := obsv.NewSpan("never") // want spanpair: never ended
	s.Child("x").End()
}

func SpanDeferred(cond bool) error {
	s := obsv.NewSpan("ok")
	defer s.End()
	if cond {
		return fmt.Errorf("fine")
	}
	return nil
}

func SpanConditional(traced bool) error {
	var s *obsv.Span
	if traced {
		s = obsv.NewSpan("maybe")
	}
	if s != nil {
		s.End()
	}
	return nil
}

func SpanEscapes(spans *[]*obsv.Span) {
	s := obsv.NewSpan("handed-off")
	*spans = append(*spans, s) // escapes: not ours to close
}
