// Package lockdep is a corpus dependency for the lockorder analyzer:
// it defines locks and lock-acquiring helpers whose summaries and
// edges must travel to importers as facts.
package lockdep

import "sync"

// Global guards package state.
var Global sync.Mutex

// Store pairs its own mutex with uses of Global.
type Store struct {
	mu sync.Mutex
	n  int
}

// Update acquires the store lock: importers calling it while holding
// another lock get an edge into Store.mu through the summary fact.
func (s *Store) Update() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// Refresh documents this package's lock order: Store.mu before
// Global. The edge travels to importers as a package fact.
func (s *Store) Refresh() {
	s.mu.Lock()
	Global.Lock()
	s.n++
	Global.Unlock()
	s.mu.Unlock()
}

// LockGlobal and UnlockGlobal wrap Global for callers.
func LockGlobal() { Global.Lock() }

// UnlockGlobal releases Global.
func UnlockGlobal() { Global.Unlock() }
