// Package lockorder is the corpus for the lockorder analyzer:
// self-deadlocks, lock-order cycles (in-package and through imported
// facts), blocking while a mutex is held, and the exempt idioms that
// must stay quiet.
package lockorder

import (
	"sync"
	"time"

	"pepatags/tools/govet-suite/testdata/src/lockdep"
)

// Cache is one lock domain.
type Cache struct {
	mu   sync.Mutex
	vals map[string]int
}

// Index is a second lock domain, for ordering cases.
type Index struct {
	mu sync.Mutex
}

// relock re-acquires a held mutex: self-deadlock.
func (c *Cache) relock() {
	c.mu.Lock()
	c.mu.Lock() // want: self-deadlock
	c.mu.Unlock()
	c.mu.Unlock()
}

// lockAB and lockBA acquire the two locks in opposite orders: a
// lock-order cycle, reported at both closing edges.
func (c *Cache) lockAB(i *Index) {
	c.mu.Lock()
	i.mu.Lock() // want: cycle (Cache.mu -> Index.mu)
	i.mu.Unlock()
	c.mu.Unlock()
}

func (c *Cache) lockBA(i *Index) {
	i.mu.Lock()
	c.mu.Lock() // want: cycle (Index.mu -> Cache.mu)
	c.mu.Unlock()
	i.mu.Unlock()
}

// publish sends on a channel inside the critical section.
func (c *Cache) publish(ch chan int) {
	c.mu.Lock()
	ch <- 1 // want: send while holding
	c.mu.Unlock()
}

// wait receives inside the critical section.
func (c *Cache) wait(ch chan int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-ch // want: receive while holding
}

// nap sleeps inside the critical section.
func (c *Cache) nap() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want: sleep while holding
	c.mu.Unlock()
}

// waitAll blocks on a WaitGroup inside the critical section.
func (c *Cache) waitAll(wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want: WaitGroup.Wait while holding
}

// blockSelect has no default clause, so the critical section blocks
// on channel traffic.
func (c *Cache) blockSelect(a, b chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want: select without default while holding
	case <-a:
	case <-b:
	}
}

// reenter calls a dependency helper whose summary fact says it
// acquires the lock already held here.
func reenter() {
	lockdep.Global.Lock()
	defer lockdep.Global.Unlock()
	lockdep.LockGlobal() // want: call may acquire Global, already held
}

// crossCycle closes a cycle against lockdep's documented order
// (Store.mu before Global): holding Global while calling Update, which
// the imported summary says takes Store.mu, reverses it.
func crossCycle(s *lockdep.Store) {
	lockdep.Global.Lock()
	s.Update() // want: cross-package cycle via imported facts
	lockdep.Global.Unlock()
}

// --- negatives ---

// trySend uses select-with-default under the lock: non-blocking by
// construction, the repo's try-send idiom.
func (c *Cache) trySend(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// closeDone closes a channel under the lock: close never blocks.
func (c *Cache) closeDone(done chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	close(done)
}

// condWait parks on a condition variable: Wait releases the lock by
// contract.
func condWait(cond *sync.Cond, n *int) {
	cond.L.Lock()
	for *n == 0 {
		cond.Wait()
	}
	cond.L.Unlock()
}

// sendOutside releases the lock before the send.
func (c *Cache) sendOutside(ch chan int) {
	c.mu.Lock()
	v := c.vals["k"]
	c.mu.Unlock()
	ch <- v
}

// updateUnlocked calls the lock-acquiring dependency with nothing
// held: no edge, no report.
func updateUnlocked(s *lockdep.Store) {
	s.Update()
}

// allowedSend is a deliberate send under the lock, annotated.
func (c *Cache) allowedSend(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- 1 //vet:allow lockorder: fixture exercises the suppression path
}
