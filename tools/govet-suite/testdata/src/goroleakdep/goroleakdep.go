// Package goroleakdep is a corpus dependency for the goroleak
// analyzer: its never-terminating function must be flagged at `go`
// sites in importers through the exported fact.
package goroleakdep

// SpinForever never returns.
func SpinForever() {
	for {
	}
}

// Drain terminates when its channel closes.
func Drain(ch chan int) {
	for range ch {
	}
}
