// Package ctxflow is the corpus for the ctxflow analyzer: blocking
// sites that ignore an in-scope context, and the cancellation-aware
// shapes that are exempt.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// waitsWrong has a context but sleeps and receives without it.
func waitsWrong(ctx context.Context, ch chan int) int {
	time.Sleep(time.Second) // want: sleep ignores ctx
	return <-ch             // want: receive ignores ctx
}

// handler carries a context through the request.
func handler(w http.ResponseWriter, r *http.Request) {
	time.Sleep(10 * time.Millisecond) // want: sleep ignores r.Context()
	w.WriteHeader(http.StatusOK)
}

// nested introduces the context in a func literal.
func nested() func(context.Context, chan struct{}) {
	return func(ctx context.Context, done chan struct{}) {
		<-done // want: receive ignores ctx
	}
}

// --- negatives ---

// waitsRight selects over the channel and the context.
func waitsRight(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// timerBound receives only on time-bounded or cancellation channels.
func timerBound(ctx context.Context) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	<-t.C
	<-time.After(time.Millisecond)
	<-ctx.Done()
}

// noCtx has no context in scope: nothing to propagate.
func noCtx(ch chan int) int {
	time.Sleep(time.Millisecond)
	return <-ch
}

// allowed is a deliberate bare receive, annotated.
func allowed(ctx context.Context, ch chan int) int {
	return <-ch //vet:allow ctxflow: producer is guaranteed to have sent already
}
