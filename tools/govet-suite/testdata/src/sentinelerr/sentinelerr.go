// Package sentinelerr is the corpus for the sentinelerr analyzer:
// ==/!=/switch comparisons against sentinels (local, imported-by-fact,
// and stdlib-by-convention), %v-wrapping, and the correct idioms.
package sentinelerr

import (
	"errors"
	"fmt"
	"io"

	"pepatags/tools/govet-suite/testdata/src/sentineldep"
)

// ErrLocal is this package's own sentinel.
var ErrLocal = errors.New("sentinelerr: local")

// depCompare can only know Finished is a sentinel through the fact
// exported while sentineldep was analyzed.
func depCompare(err error) bool {
	return err == sentineldep.Finished // want: == against imported sentinel
}

func localCompare(err error) bool {
	return err != ErrLocal // want: != against local sentinel
}

func switchCompare(err error) string {
	switch err {
	case ErrLocal: // want: switch case compares with ==
		return "local"
	default:
		return "other"
	}
}

func badWrap(err error) error {
	if errors.Is(err, ErrLocal) {
		return fmt.Errorf("load failed: %v", ErrLocal) // want: %v loses the chain
	}
	return err
}

// stdlibCompare exercises the naming-convention fallback for packages
// never analyzed from source.
func stdlibCompare(err error) bool {
	return err == io.EOF // want: == against stdlib sentinel
}

// --- negatives ---

func goodCompare(err error) bool {
	return errors.Is(err, sentineldep.Finished)
}

func goodWrap(err error) error {
	return fmt.Errorf("load failed: %w", ErrLocal)
}

var limit = 10

// notSentinel compares plain values: not an error at all.
func notSentinel(n int) bool {
	return n == limit
}

func nilCheck(err error) bool {
	return err == nil
}

// allowedCompare is a deliberate identity check, annotated.
func allowedCompare(err error) bool {
	return err == ErrLocal //vet:allow sentinelerr: fixture exercises the suppression path
}
