package main

import (
	"go/ast"
	"go/types"
)

// spanpairAnalyzer checks that every obsv span bound to a local
// variable is closed on all return paths. A span left open corrupts
// the trace tree silently: the run completes, the manifest validates,
// and the Chrome trace just misses a box.
//
// The check is lexical, not a full data-flow analysis, and errs
// towards silence:
//
//   - a span that escapes the function (passed as an argument, stored,
//     returned) is somebody else's responsibility and is skipped;
//   - `defer s.End()` anywhere discharges the variable;
//   - otherwise every `return` after the span's creation must have
//     some `s.End()` between the creation and itself, and at least one
//     End must exist at all.
//
// Conditional creation (`var s *obsv.Span; if traced { s = parent.Child(..) }`)
// works naturally: the matching `if s != nil { s.End() }` satisfies
// the lexical ordering.
var spanpairAnalyzer = &Analyzer{
	Name: "spanpair",
	Doc:  "obsv spans must End() on every return path",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkSpans(p, fd)
				}
			}
		}
	},
}

// spanVar tracks one span-typed local inside a function.
type spanVar struct {
	obj      types.Object
	created  ast.Node // the assignment creating it
	ends     []ast.Node
	deferred bool
	escapes  bool
}

func checkSpans(p *Pass, fd *ast.FuncDecl) {
	spans := map[types.Object]*spanVar{}

	// Pass 1: find locals assigned a span-creating call.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if _, ok := as.Rhs[0].(*ast.CallExpr); !ok {
			return true
		}
		if !isSpanType(p, as.Rhs[0]) {
			return true
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		if sv, seen := spans[obj]; seen {
			// Re-created in a loop or second branch: keep the first
			// creation site, which dominates lexically.
			_ = sv
			return true
		}
		spans[obj] = &spanVar{obj: obj, created: as}
		return true
	})
	if len(spans) == 0 {
		return
	}

	// Pass 2: classify every use of each span variable, keeping a
	// parent stack so a bare identifier can be told apart from a
	// receiver, an argument or a deferred End.
	var stack []ast.Node
	var returns []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if _, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, n)
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		sv := spans[obj]
		if sv == nil {
			return true
		}
		classifyUse(sv, id, stack)
		return true
	})

	for _, sv := range spans {
		if sv.escapes || sv.deferred {
			continue
		}
		name := sv.obj.Name()
		if len(sv.ends) == 0 {
			p.Reportf(sv.created.Pos(), "span %s is never ended", name)
			continue
		}
		for _, ret := range returns {
			if ret.Pos() < sv.created.End() {
				continue
			}
			closed := false
			for _, end := range sv.ends {
				if end.Pos() > sv.created.End() && end.End() <= ret.Pos() {
					closed = true
					break
				}
			}
			if !closed {
				p.Reportf(ret.Pos(), "return without %s.End() (span created at %s)",
					name, p.Fset.Position(sv.created.Pos()))
			}
		}
	}
}

// classifyUse decides what one identifier occurrence means for the
// span variable: a benign declaration/receiver use, an End call
// (deferred or not), or an escape.
func classifyUse(sv *spanVar, id *ast.Ident, stack []ast.Node) {
	parent := parentOf(stack, 1)
	switch pn := parent.(type) {
	case *ast.AssignStmt:
		for _, l := range pn.Lhs {
			if l == ast.Expr(id) {
				return // (re)creation or reassignment target
			}
		}
		sv.escapes = true // span on the RHS of some other assignment
	case *ast.ValueSpec:
		for _, n := range pn.Names {
			if n == id {
				return // var declaration
			}
		}
		sv.escapes = true
	case *ast.SelectorExpr:
		if pn.X != ast.Expr(id) {
			return // id is the field/method name, not our variable
		}
		call, ok := parentOf(stack, 2).(*ast.CallExpr)
		if !ok || call.Fun != ast.Expr(pn) {
			sv.escapes = true // field access or method value: too clever
			return
		}
		if pn.Sel.Name != "End" {
			return // reading the span (Child, Name, ...) is fine
		}
		if _, ok := parentOf(stack, 3).(*ast.DeferStmt); ok {
			sv.deferred = true
			return
		}
		sv.ends = append(sv.ends, call)
	case *ast.BinaryExpr:
		return // nil check such as `if s != nil`
	default:
		// Argument, return value, composite literal, index, &s, ...:
		// the span leaves our sight.
		sv.escapes = true
	}
}

// parentOf returns the n-th enclosing node of the top of the stack
// (the top itself is depth 0).
func parentOf(stack []ast.Node, n int) ast.Node {
	if len(stack) <= n {
		return nil
	}
	return stack[len(stack)-1-n]
}

// isSpanType reports whether the expression's type is *obsv.Span.
func isSpanType(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == obsvPath
}
