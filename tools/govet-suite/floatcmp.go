package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatcmpAnalyzer flags == and != between floating-point operands.
// The numeric core converges iteratively, so exact equality on a
// computed float is almost always a tolerance bug; the rare legitimate
// site (comparing against a value that was *set*, never computed, such
// as a default weight of exactly 1) documents itself with
// //vet:allow floatcmp and a reason.
var floatcmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag == and != on floating-point operands",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(p, be.X) || isFloat(p, be.Y) {
					p.Reportf(be.OpPos, "%s on float operands; compare with a tolerance or annotate //vet:allow floatcmp", be.Op)
				}
				return true
			})
		}
	},
}

func isFloat(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
