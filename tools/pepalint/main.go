// pepalint runs the static semantic checks of internal/pepa/analysis
// over PEPA specification files without deriving their state spaces.
// It catches the modelling mistakes that otherwise surface as opaque
// mid-derivation failures — dead cooperation actions, unsynchronised
// passive behaviour, unguarded recursion, undefined names, bad rates —
// and reports them with file:line positions and fix hints.
//
// Usage:
//
//	pepalint models/*.pepa
//	pepalint -json model.pepa
//	pepalint -rules
//
// Exit codes: 0 when every file is free of error-severity findings
// (warnings alone do not fail the run), 1 when any error-severity
// diagnostic is reported, 2 on usage or I/O errors.
//
// The rules are documented in docs/LINT.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pepatags/internal/pepa/analysis"
)

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: pepalint [-json] <model.pepa> ...
       pepalint -rules

Statically checks PEPA specifications for semantic mistakes that
derivation would only surface as runtime failures (or not at all).
The rules are documented in docs/LINT.md.

  -json   emit a pepatags/pepalint/v1 JSON report instead of text
  -rules  list the rules and exit

Exits 0 when no error-severity diagnostics are found, 1 when any
are, 2 on usage or I/O errors.`)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pepalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() { usage(stderr) }
	jsonOut := fs.Bool("json", false, "emit a JSON report")
	listRules := fs.Bool("rules", false, "list the lint rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listRules {
		for _, r := range analysis.Rules {
			fmt.Fprintf(stdout, "%-20s %-8s %s\n", r.ID, r.Severity, r.Summary)
		}
		return 0
	}
	if fs.NArg() == 0 {
		usage(stderr)
		return 2
	}
	results, err := analysis.LintFiles(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "pepalint: %v\n", err)
		return 2
	}
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, results); err != nil {
			fmt.Fprintf(stderr, "pepalint: %v\n", err)
			return 2
		}
	} else {
		analysis.WriteText(stdout, results)
	}
	if errs, _ := analysis.Count(results); errs > 0 {
		return 1
	}
	return 0
}
