package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pepatags/internal/pepa/analysis"
)

func writeModel(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cleanSrc = "P = (a, 1).P1;\nP1 = (b, 2).P;\nP"

const deadSyncSrc = "P = (a, 1.0).P1;\nP1 = (sync, 1.0).P1;\nQ = (sync2, 1.0).Q;\nP <sync, sync2> Q"

func TestRunCleanModel(t *testing.T) {
	path := writeModel(t, "clean.pepa", cleanSrc)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean model produced output %q", out.String())
	}
}

func TestRunBadModelTextOutput(t *testing.T) {
	path := writeModel(t, "bad.pepa", deadSyncSrc)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, path+":2: error[dead-sync]") {
		t.Fatalf("output missing positioned dead-sync error:\n%s", text)
	}
	if !strings.Contains(text, "fix:") {
		t.Fatalf("output missing fix hint:\n%s", text)
	}
	if !strings.Contains(text, "error(s)") {
		t.Fatalf("output missing summary line:\n%s", text)
	}
}

func TestRunJSONOutput(t *testing.T) {
	bad := writeModel(t, "bad.pepa", deadSyncSrc)
	clean := writeModel(t, "clean.pepa", cleanSrc)
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", bad, clean}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errOut.String())
	}
	var rep analysis.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != analysis.ReportSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if len(rep.Files) != 2 || rep.Errors == 0 {
		t.Fatalf("report %+v", rep)
	}
	found := false
	for _, d := range rep.Files[0].Diagnostics {
		if d.Rule == "dead-sync" && d.Severity == "error" && d.Line == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no positioned dead-sync error in %+v", rep.Files[0])
	}
	if len(rep.Files[1].Diagnostics) != 0 {
		t.Fatalf("clean file has diagnostics: %+v", rep.Files[1])
	}
}

func TestRunSyntaxErrorIsPositionedDiagnostic(t *testing.T) {
	path := writeModel(t, "syn.pepa", "P = (a, 1).P;\nP = (b, 2).P;\nP")
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), path+":2: error[syntax]") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunWarningsOnlyExitZero(t *testing.T) {
	// An unused definition is a warning; warnings alone must not fail.
	path := writeModel(t, "warn.pepa", "P = (a, 1).P1;\nP1 = (b, 2).P;\nOrphan = (c, 1).Orphan;\nP")
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0 (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "warning[unused-process]") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunUsageAndIOErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.pepa")}, &out, &errOut); code != 2 {
		t.Fatalf("missing-file exit %d, want 2", code)
	}
}

func TestRunRulesListing(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-rules"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"dead-sync", "unguarded-recursion", "undef-rate", "self-loop"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("rules listing missing %s:\n%s", want, out.String())
		}
	}
}

func TestRepoModelsAreLintClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "models", "*.pepa"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no models found: %v", err)
	}
	var out, errOut bytes.Buffer
	if code := run(paths, &out, &errOut); code != 0 {
		t.Fatalf("models/*.pepa not lint-clean (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}
