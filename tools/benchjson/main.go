// benchjson converts `go test -bench` text output (stdin) into a JSON
// summary (stdout, or -o file). It is what `make bench` uses to write
// BENCH_derive.json, so benchmark history can be diffed and plotted
// without re-parsing Go's bench format.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric pairs (e.g. "events/s" from
	// the simulator benchmarks) keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type summary struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "benchjson: unexpected arguments: %v (input is read from stdin)\n", fs.Args())
		return 2
	}

	var s summary
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			s.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			s.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				s.Benchmarks = append(s.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	// An empty summary means the bench run produced no results — a
	// filter that matched nothing, a build failure swallowed by a
	// pipeline, or benchmarks that all errored out. Writing "[]" would
	// let CI and `make bench` pass silently on a broken run, so fail
	// instead.
	if len(s.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark results found on stdin (empty or non-bench input)")
		return 1
	}

	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	buf = append(buf, '\n')
	if *out == "" {
		stdout.Write(buf)
		return 0
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// parseBench parses one result line, e.g.
//
//	BenchmarkDeriveTAG/K=20/workers=4-8  12  93210458 ns/op  1024 B/op  17 allocs/op
func parseBench(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return result{}, false
	}
	var r result
	r.Name = f[0]
	r.Procs = 1
	if i := strings.LastIndex(r.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil || f[3] != "ns/op" {
		return result{}, false
	}
	r.NsPerOp = ns
	for i := 4; i+1 < len(f); i += 2 {
		switch unit := f[i+1]; unit {
		case "B/op":
			if v, err := strconv.ParseInt(f[i], 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(f[i], 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		default:
			// Custom b.ReportMetric units, e.g. "12345678 events/s".
			if v, err := strconv.ParseFloat(f[i], 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
	}
	return r, true
}
