package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchInput = `goos: linux
goarch: amd64
pkg: pepatags/internal/pepa
cpu: Intel(R) Xeon(R)
BenchmarkDeriveTAG/K=20/workers=4-8  12  93210458 ns/op  1024 B/op  17 allocs/op
BenchmarkDeriveTAG/K=20/workers=1-8  4  310093121 ns/op
BenchmarkSolveGTH-8  100  1234567.5 ns/op
BenchmarkSimCalendar/nodes=1000-8  5  240000000 ns/op  4150000.25 events/s  96 B/op  3 allocs/op
PASS
ok  	pepatags/internal/pepa	4.2s
`

const goldenOutput = `{
  "goos": "linux",
  "goarch": "amd64",
  "pkg": "pepatags/internal/pepa",
  "cpu": "Intel(R) Xeon(R)",
  "benchmarks": [
    {
      "name": "BenchmarkDeriveTAG/K=20/workers=4",
      "procs": 8,
      "iterations": 12,
      "ns_per_op": 93210458,
      "bytes_per_op": 1024,
      "allocs_per_op": 17
    },
    {
      "name": "BenchmarkDeriveTAG/K=20/workers=1",
      "procs": 8,
      "iterations": 4,
      "ns_per_op": 310093121
    },
    {
      "name": "BenchmarkSolveGTH",
      "procs": 8,
      "iterations": 100,
      "ns_per_op": 1234567.5
    },
    {
      "name": "BenchmarkSimCalendar/nodes=1000",
      "procs": 8,
      "iterations": 5,
      "ns_per_op": 240000000,
      "bytes_per_op": 96,
      "allocs_per_op": 3,
      "metrics": {
        "events/s": 4150000.25
      }
    }
  ]
}
`

func runCLI(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(stdin), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestGoldenStdout(t *testing.T) {
	code, stdout, stderr := runCLI(t, benchInput)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if stdout != goldenOutput {
		t.Errorf("output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", stdout, goldenOutput)
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	code, stdout, stderr := runCLI(t, benchInput, "-o", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("wrote to stdout despite -o: %q", stdout)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != goldenOutput {
		t.Errorf("file differs from golden:\n%s", data)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "", "-bogus"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "", "positional"); code != 2 {
		t.Errorf("positional arg: exit %d, want 2", code)
	}
}

func TestUnwritableOutput(t *testing.T) {
	code, _, stderr := runCLI(t, benchInput, "-o", filepath.Join(t.TempDir(), "no", "such", "dir.json"))
	if code != 1 {
		t.Errorf("unwritable -o: exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "benchjson:") {
		t.Errorf("no diagnostic on stderr: %q", stderr)
	}
}

// TestMalformedLinesSkipped: garbage that merely looks like a result
// is dropped, not crashed on, and does not poison the summary.
func TestMalformedLinesSkipped(t *testing.T) {
	in := strings.Join([]string{
		"BenchmarkTooFewFields-8  12",
		"BenchmarkBadIters-8  twelve  93210458 ns/op",
		"BenchmarkBadUnit-8  12  93210458 s/op",
		"BenchmarkOK-4  10  5 ns/op  junk trailing fields",
		"Benchmark  ",
		"random noise",
	}, "\n") + "\n"
	code, stdout, stderr := runCLI(t, in)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var s summary
	if err := json.Unmarshal([]byte(stdout), &s); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].Name != "BenchmarkOK" || s.Benchmarks[0].Procs != 4 {
		t.Errorf("malformed lines not skipped cleanly: %+v", s.Benchmarks)
	}
}

// Empty or result-free input must fail loudly: CI pipes bench smoke
// output through benchjson precisely so a filter that matches nothing
// (or a swallowed build failure) cannot pass silently.
func TestEmptyInputFails(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"empty", ""},
		{"no results", "goos: linux\nPASS\nok  \tpepatags\t0.1s\n"},
	} {
		code, stdout, stderr := runCLI(t, tc.in)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1", tc.name, code)
		}
		if stdout != "" {
			t.Errorf("%s: wrote output despite failure: %q", tc.name, stdout)
		}
		if !strings.Contains(stderr, "no benchmark results") {
			t.Errorf("%s: no diagnostic on stderr: %q", tc.name, stderr)
		}
	}
}
