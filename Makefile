GO ?= go

.PHONY: all build test race vet lint analyze fmt-check bench bench-sim sim-smoke manifest-smoke sweep-smoke serve-smoke conform-smoke fuzz-smoke overhead-smoke docs-check cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -count=2 reruns each package to surface order-dependent flakes; the
# sweep package is included for its kill/resume concurrency tests.
race:
	$(GO) test -race -count=2 -timeout=10m ./internal/pepa ./internal/linalg ./internal/ctmc ./internal/core ./internal/sim ./internal/obsv ./internal/sweep ./internal/conform

vet:
	$(GO) vet ./...

# Project static analysis (docs/LINT.md): pepalint over the shipped
# PEPA models, then the govet-suite analyzers (floatcmp, metricname,
# spanpair, lockorder, goroleak, ctxflow, sentinelerr) over every
# package — tools and _test.go files included.
lint:
	$(GO) run ./tools/pepalint models/*.pepa
	$(GO) run ./tools/govet-suite ./...

# Same suite, machine-readable: a pepatags/analysis/v1 report on
# stdout and a run manifest with the analysis section, validated by
# manifestcheck. CI uploads both when the suite finds anything.
analyze:
	$(GO) run ./tools/govet-suite -json -manifest analyze-manifest.json ./... > analyze.json
	$(GO) run ./tools/manifestcheck analyze-manifest.json

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the derivation/solver benchmarks (serial vs parallel) and write a
# machine-readable summary to BENCH_derive.json.
bench:
	$(GO) test -run=NONE -bench='BenchmarkDerive|BenchmarkSteady' -benchmem . | tee BENCH_derive.txt
	$(GO) run ./tools/benchjson -o BENCH_derive.json < BENCH_derive.txt

# Run the event-core benchmarks (calendar queue vs the retained heap
# reference, clusters of 100/1000/4000 nodes) and write the events/s
# figures to BENCH_sim.json (docs/SIMULATION.md).
bench-sim:
	$(GO) test -run=NONE -bench='BenchmarkSim' -benchmem ./internal/sim | tee BENCH_sim.txt
	$(GO) run ./tools/benchjson -o BENCH_sim.json < BENCH_sim.txt

# End-to-end replication smoke: generate a bounded-Pareto trace, replay
# it across 4 parallel replications on each event core, and require the
# two manifests to agree on pooled results (the cores are bit-identical
# by construction; the differential battery in internal/conform is the
# exhaustive check). Manifests validated against the schema.
sim-smoke:
	$(GO) run ./cmd/tagssim -gen-trace sim-smoke.jsonl -gen-jobs 5000 > /dev/null
	$(GO) run ./cmd/tagssim -trace sim-smoke.jsonl -policy pod2 -replications 4 -rep-workers 2 -manifest sim-cal.json > sim-cal.txt
	$(GO) run ./cmd/tagssim -trace sim-smoke.jsonl -policy pod2 -replications 4 -rep-workers 4 -core heap -manifest sim-heap.json > sim-heap.txt
	grep -E 'completed|response|slowdown|loss' sim-cal.txt > sim-cal-stats.txt
	grep -E 'completed|response|slowdown|loss' sim-heap.txt > sim-heap-stats.txt
	cmp sim-cal-stats.txt sim-heap-stats.txt
	$(GO) run ./tools/manifestcheck sim-cal.json sim-heap.json

# Emit one manifest per CLI and validate all of them against the
# run-manifest schema — including an intentionally failed run, whose
# manifest must carry the error and the flight-recorder tail.
manifest-smoke:
	$(GO) run ./cmd/pepa -tag -manifest pepa-run.json -events pepa-run.jsonl
	$(GO) run ./cmd/pepa -tag -lint -json -manifest pepa-lint.json > /dev/null
	$(GO) run ./cmd/tagseval -short -fig figure6 -manifest tagseval-run.json > /dev/null
	$(GO) run ./cmd/tagssim -jobs 20000 -stats -manifest tagssim-run.json > /dev/null 2>&1
	$(GO) run ./cmd/tagssim -jobs 20000 -replications 4 -rep-workers 2 -policy sq -manifest tagssim-reps.json > /dev/null
	! $(GO) run ./cmd/pepa -tag -max-states 3 -manifest pepa-fail.json 2> /dev/null
	$(GO) run ./tools/manifestcheck pepa-run.json pepa-lint.json tagseval-run.json tagssim-run.json tagssim-reps.json pepa-fail.json

# Timing-sensitive gate: full telemetry (registry + events + progress)
# must stay within 2% of the bare derivation kernel (best-of-7 + 2ms
# slack; see overhead_test.go).
overhead-smoke:
	PEPATAGS_OVERHEAD_SMOKE=1 $(GO) test -run TestTelemetryOverhead -v .

# Differential-testing smoke: 200 seeded scenarios through the full
# oracle battery, manifest validated. Zero violations expected; on
# failure a shrunken repro lands in conform-repros/ (see docs/TESTING.md).
conform-smoke:
	$(GO) run ./tools/conform -seed 1 -n 200 -repro-dir conform-repros -manifest conform-run.json
	$(GO) run ./tools/manifestcheck conform-run.json

# Short fuzz pass over the PEPA front end. The committed corpus under
# internal/pepa/testdata/fuzz is always replayed by plain `make test`;
# this additionally explores new inputs for 30s per target.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/pepa
	$(GO) test -run=NONE -fuzz=FuzzLint -fuzztime=30s ./internal/pepa

# Per-package coverage summary plus the repo-wide total that CI gates on.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Run the 3-point smoke sweep twice — once clean, once interrupted and
# resumed (journal truncated to the header, one row and a partial
# line) — and require byte-identical journals plus a valid manifest
# with a sweep record.
sweep-smoke:
	$(GO) run ./cmd/tagseval -sweep models/sweep_smoke.json -journal sweep-clean.jsonl -manifest sweep-run.json > /dev/null
	head -n 2 sweep-clean.jsonl > sweep-resume.jsonl
	printf '{"seq":1,"ser' >> sweep-resume.jsonl
	$(GO) run ./cmd/tagseval -sweep models/sweep_smoke.json -journal sweep-resume.jsonl -resume > /dev/null
	cmp sweep-clean.jsonl sweep-resume.jsonl
	$(GO) run ./tools/manifestcheck sweep-run.json

# End-to-end daemon smoke: build the real pepad binary, start it on
# an ephemeral port, submit the Figure 8 sweep spec over HTTP, poll
# the job to completion, drain with SIGTERM and validate the run
# manifest (docs/PEPAD.md).
serve-smoke:
	$(GO) run ./tools/servesmoke

# Dead-link check over the documentation set (tools/doccheck): every
# relative link and heading anchor in the markdown must resolve.
docs-check:
	$(GO) run ./tools/doccheck README.md DESIGN.md EXPERIMENTS.md ROADMAP.md PAPER.md docs/*.md

clean:
	rm -f BENCH_derive.txt BENCH_derive.json BENCH_sim.txt BENCH_sim.json \
		pepa-run.json pepa-run.jsonl pepa-lint.json pepa-fail.json \
		tagseval-run.json tagssim-run.json tagssim-reps.json \
		sim-smoke.jsonl sim-cal.json sim-heap.json sim-cal.txt sim-heap.txt \
		sim-cal-stats.txt sim-heap-stats.txt \
		sweep-clean.jsonl sweep-resume.jsonl sweep-run.json conform-run.json coverage.out \
		analyze.json analyze-manifest.json
	rm -rf conform-repros
