GO ?= go

.PHONY: all build test race vet fmt-check bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/pepa ./internal/linalg ./internal/ctmc ./internal/core ./internal/sim

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the derivation/solver benchmarks (serial vs parallel) and write a
# machine-readable summary to BENCH_derive.json.
bench:
	$(GO) test -run=NONE -bench='BenchmarkDerive|BenchmarkSteady' -benchmem . | tee BENCH_derive.txt
	$(GO) run ./tools/benchjson -o BENCH_derive.json < BENCH_derive.txt

clean:
	rm -f BENCH_derive.txt BENCH_derive.json
