GO ?= go

.PHONY: all build test race vet lint fmt-check bench manifest-smoke sweep-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/pepa ./internal/linalg ./internal/ctmc ./internal/core ./internal/sim ./internal/obsv

vet:
	$(GO) vet ./...

# Project static analysis (docs/LINT.md): pepalint over the shipped
# PEPA models, then the custom Go analyzers (floatcmp, metricname,
# spanpair) over every package.
lint:
	$(GO) run ./tools/pepalint models/*.pepa
	$(GO) run ./tools/govet-suite ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the derivation/solver benchmarks (serial vs parallel) and write a
# machine-readable summary to BENCH_derive.json.
bench:
	$(GO) test -run=NONE -bench='BenchmarkDerive|BenchmarkSteady' -benchmem . | tee BENCH_derive.txt
	$(GO) run ./tools/benchjson -o BENCH_derive.json < BENCH_derive.txt

# Emit one manifest per CLI and validate all three against the
# run-manifest schema.
manifest-smoke:
	$(GO) run ./cmd/pepa -tag -manifest pepa-run.json
	$(GO) run ./cmd/pepa -tag -lint -json -manifest pepa-lint.json > /dev/null
	$(GO) run ./cmd/tagseval -short -fig figure6 -manifest tagseval-run.json > /dev/null
	$(GO) run ./cmd/tagssim -jobs 20000 -stats -manifest tagssim-run.json > /dev/null 2>&1
	$(GO) run ./tools/manifestcheck pepa-run.json pepa-lint.json tagseval-run.json tagssim-run.json

# Run the 3-point smoke sweep twice — once clean, once interrupted and
# resumed (journal truncated to the header, one row and a partial
# line) — and require byte-identical journals plus a valid manifest
# with a sweep record.
sweep-smoke:
	$(GO) run ./cmd/tagseval -sweep models/sweep_smoke.json -journal sweep-clean.jsonl -manifest sweep-run.json > /dev/null
	head -n 2 sweep-clean.jsonl > sweep-resume.jsonl
	printf '{"seq":1,"ser' >> sweep-resume.jsonl
	$(GO) run ./cmd/tagseval -sweep models/sweep_smoke.json -journal sweep-resume.jsonl -resume > /dev/null
	cmp sweep-clean.jsonl sweep-resume.jsonl
	$(GO) run ./tools/manifestcheck sweep-run.json

clean:
	rm -f BENCH_derive.txt BENCH_derive.json pepa-run.json pepa-lint.json tagseval-run.json tagssim-run.json \
		sweep-clean.jsonl sweep-resume.jsonl sweep-run.json
