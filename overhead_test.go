package pepatags_test

// Telemetry-overhead smoke: asserts that attaching the full telemetry
// plane (registry + rate-limited event log + progress callback) to the
// derivation kernel costs at most 2% wall time over the bare run, per
// the observability acceptance bar. Timing assertions are inherently
// noisy, so the test is opt-in (PEPATAGS_OVERHEAD_SMOKE=1; CI sets it
// in the overhead-smoke step) and compares best-of-N runs with a small
// absolute slack to absorb scheduler jitter on loaded runners.

import (
	"io"
	"os"
	"testing"
	"time"

	"pepatags/internal/core"
	"pepatags/internal/obsv"
	"pepatags/internal/pepa"
)

func TestTelemetryOverhead(t *testing.T) {
	if os.Getenv("PEPATAGS_OVERHEAD_SMOKE") == "" {
		t.Skip("set PEPATAGS_OVERHEAD_SMOKE=1 to run the timing-sensitive overhead smoke")
	}
	m, err := pepa.Parse(core.NewTAGExp(5, 10, 42, 6, 20, 20).PEPASource())
	if err != nil {
		t.Fatal(err)
	}
	reg := obsv.NewRegistry()
	log := obsv.NewEventLog(obsv.EventLogConfig{
		Sink:        io.Discard,
		MinInterval: obsv.DefaultCLIMinInterval,
	})
	defer log.Close()
	plain := pepa.DeriveOptions{}
	telemetry := pepa.DeriveOptions{
		Metrics:  reg,
		Events:   log,
		Progress: func(obsv.Progress) {},
	}

	derive := func(opts pepa.DeriveOptions) time.Duration {
		start := time.Now()
		ss, err := pepa.Derive(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if ss.Chain.NumStates() == 0 {
			t.Fatal("empty state space")
		}
		return elapsed
	}

	// Warm both paths (allocator, branch predictors, lazy init).
	derive(plain)
	derive(telemetry)

	const rounds = 7
	best := func(opts pepa.DeriveOptions) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			if d := derive(opts); d < min {
				min = d
			}
		}
		return min
	}
	// Interleaving would let a machine-wide slowdown hit both arms, but
	// best-of-N already takes the quietest round of each.
	off := best(plain)
	on := best(telemetry)

	slack := off*2/100 + 2*time.Millisecond
	t.Logf("telemetry-off %v, telemetry-on %v (budget %v)", off, on, off+slack)
	if on > off+slack {
		t.Fatalf("telemetry overhead too high: on=%v off=%v (>2%%+2ms)", on, off)
	}
}
