// Responsedist: the full response-time distribution of a TAG job —
// beyond the paper's mean-value analysis. An admitted job is "tagged"
// and followed through an absorbing CTMC (exact), and the same system
// is simulated with reservoir-sampled percentiles (statistical). The
// two views agree, and together they quantify the paper's claim that
// under TAG "for all but the largest jobs the delay is bounded".
package main

import (
	"fmt"
	"log"

	"pepatags/internal/core"
	"pepatags/internal/dist"
	"pepatags/internal/policies"
	"pepatags/internal/sim"
	"pepatags/internal/workload"
)

func main() {
	const (
		lambda = 9.0
		mu     = 10.0
		tr     = 42.0
		n      = 6
		k      = 10
	)
	m := core.NewTAGExp(lambda, mu, tr, n, k, k)
	tagged, err := m.TaggedJob()
	if err != nil {
		log.Fatal(err)
	}
	meas, err := m.Analyze()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TAG system: lambda=%g, mu=%g, t=%g, n=%d, K=%d (tagged chain: %d states)\n\n",
		lambda, mu, tr, n, k, tagged.States())
	fmt.Printf("P(admitted job completes)     %.6f\n", tagged.SuccessProbability())
	fmt.Printf("E[response | success] (exact) %.5f\n", tagged.MeanResponse())
	fmt.Printf("Little's-law W (paper's view) %.5f\n\n", meas.W)

	fmt.Println("analytic response-time distribution:")
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		x, err := tagged.Percentile(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p%-4.0f %.5f\n", p*100, x)
	}

	// The same system, simulated with the Erlang timeout.
	cfg := sim.Config{
		Nodes: []sim.NodeConfig{
			{Capacity: k, Timeout: policies.ErlangTimeout(n, tr)},
			{Capacity: k},
		},
		Policy: policies.FirstNode{},
		Source: &workload.StochasticSource{
			Arrivals: workload.NewPoisson(lambda),
			Sizes:    dist.NewExponential(mu),
			Limit:    400000,
		},
		Seed:             17,
		Warmup:           100,
		PercentileSample: 20000,
	}
	sm := sim.NewSystem(cfg).Run(0)
	fmt.Println("\nsimulated (400k jobs):")
	fmt.Printf("  mean  %.5f ± %.2g\n", sm.Response.Mean(), sm.Response.CI95())
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		fmt.Printf("  p%-4.0f %.5f\n", p*100, sm.ResponsePercentile(p))
	}
}
