// Heavytail: the paper's headline result (Figures 9-10). Under a
// hyper-exponential demand where 1% of jobs are 100x longer, TAG —
// which knows nothing about job sizes or queue states — beats the
// shortest-queue policy across a wide band of timeout rates, and
// random allocation collapses entirely.
package main

import (
	"fmt"
	"log"

	"pepatags/internal/core"
	"pepatags/internal/dist"
)

func main() {
	// Mean demand 0.1 with alpha = 0.99, mu1 = 100 mu2: the paper's
	// "deliberately extreme" mix corresponding to observed heavy-tailed
	// traffic.
	h := dist.H2ForTAG(0.1, 0.99, 100)
	fmt.Printf("service: %s\n  mean %.3g, squared coefficient of variation %.3g\n\n",
		h, h.Mean(), dist.SCV(h))

	const lambda = 11
	sq, err := core.NewShortestQueue(lambda, h, 10).Analyze()
	if err != nil {
		log.Fatal(err)
	}
	rnd, err := core.NewRandomTwoNode(lambda, h, 10).Analyze()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("timeout-rate    TAG-W    TAG-X      (SQ: W, X fixed)")
	for _, eff := range []float64{0.5, 1, 1.5, 2, 3, 5, 8, 12} {
		tag, err := core.NewTAGH2(lambda, h, eff*6, 6, 10, 10).Analyze()
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if tag.W < sq.W {
			marker = "  <- TAG beats SQ"
		}
		fmt.Printf("%8.1f     %7.4f  %7.4f%s\n", eff, tag.W, tag.Throughput, marker)
	}
	fmt.Printf("\nshortest-queue: W = %.4f, X = %.4f\n", sq.W, sq.Throughput)
	fmt.Printf("random:         W = %.4f (the paper: off the chart, W > 1 at its scale)\n", rnd.W)

	// The residual mix after a timeout: long jobs dominate node 2.
	m := core.NewTAGH2(lambda, h, 12, 6, 10, 10)
	fmt.Printf("\nresidual short-job probability after a timeout: alpha' = %.4f (alpha = 0.99)\n",
		m.AlphaPrime())
}
