// Introexample: the worked example from the paper's introduction,
// reproduced exactly with the discrete-event simulator. Six jobs wait
// at time zero; a two-node TAG system serves them under different
// deterministic timeouts.
package main

import (
	"fmt"

	"pepatags/internal/policies"
	"pepatags/internal/sim"
	"pepatags/internal/workload"
)

func run(sizes []float64, tau float64) float64 {
	cfg := sim.Config{
		Nodes: []sim.NodeConfig{
			{Timeout: policies.ConstantTimeout(tau)},
			{},
		},
		Policy: policies.FirstNode{},
		Source: workload.NewTrace(make([]float64, len(sizes)), sizes),
		Seed:   1,
	}
	return sim.NewSystem(cfg).Run(0).Response.Mean()
}

func main() {
	sizes := []float64{4, 5, 6, 7, 3, 2}
	fmt.Printf("jobs %v (all queued at t=0), two nodes, unit speed\n\n", sizes)
	fmt.Println("timeout    mean response   paper")
	for _, c := range []struct {
		tau   float64
		label string
		paper string
	}{
		{1e9, "none", "17"},
		{0, "0", "17"},
		{1.5, "1.5", "18.5"},
		{3.5, "3.5", "16.67"},
		{3.0000001, "3+eps", "15.67 (optimal)"},
	} {
		fmt.Printf("%-8s   %13.4f   %s\n", c.label, run(sizes, c.tau), c.paper)
	}

	heavy := []float64{99, 5, 6, 7, 3, 2}
	fmt.Printf("\njobs %v — one elephant in the stream\n\n", heavy)
	fmt.Println("timeout    mean response   paper")
	fmt.Printf("%-8s   %13.4f   %s\n", "none", run(heavy, 1e9), "112")
	fmt.Printf("%-8s   %13.4f   %s\n", "7+eps", run(heavy, 7.0000001), "36.5 (the 'dramatic gain')")
}
