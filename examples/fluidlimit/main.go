// Fluidlimit: the Section 3.1 alternative analysis. Instead of
// deriving the CTMC (whose size grows with the buffer bounds), the
// fluid ODE model integrates two equations regardless of K — the
// scalability trade the paper attributes to Hillston's fluid-flow
// approximation and the Dizzy tool. This example contrasts the two on
// the same system and then pushes the fluid model to buffer sizes far
// beyond what the CTMC could handle.
package main

import (
	"fmt"
	"log"

	"pepatags/internal/core"
	"pepatags/internal/fluid"
)

func main() {
	const lambda, mu, tr = 11.0, 10.0, 42.0
	const n = 6

	fmt.Println("K      CTMC-states  CTMC-L1  CTMC-L2   fluid-L1  fluid-L2")
	for _, k := range []int{5, 10, 20} {
		em, err := core.NewTAGExp(lambda, mu, tr, n, k, k).Analyze()
		if err != nil {
			log.Fatal(err)
		}
		fm, err := fluid.TAGFluid{Lambda: lambda, Mu: mu, T: tr, N: n,
			K1: float64(k), K2: float64(k)}.Equilibrium()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %11d  %7.3f  %7.3f   %8.3f  %8.3f\n",
			k, em.States, em.L1, em.L2, fm.L1, fm.L2)
	}

	fmt.Println("\nfluid only (CTMC would need millions of states):")
	for _, k := range []float64{100, 1000, 10000} {
		fm, err := fluid.TAGFluid{Lambda: lambda, Mu: mu, T: tr, N: n, K1: k, K2: k}.Equilibrium()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K = %-7g L1 = %.3f  L2 = %.3f  X = %.3f\n", k, fm.L1, fm.L2, fm.X)
	}

	// The phase-resolved (replicated places) variant tracks every timer
	// derivative, the literal Figure 4 analysis.
	pm, err := fluid.TAGFluidPlaces{Lambda: lambda, Mu: mu, T: tr, N: n, K1: 10, K2: 10}.Equilibrium()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase-resolved fluid (K=10): L1 = %.3f  L2 = %.3f  X = %.3f\n", pm.L1, pm.L2, pm.X)

	// A transient trajectory: how the queues fill from empty.
	m := fluid.TAGFluid{Lambda: lambda, Mu: mu, T: tr, N: n, K1: 10, K2: 10}.Model()
	traj, err := m.RK4Trajectory(m.Init, 2, 1e-4, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfluid transient from empty (t: Q1, Q2):")
	for i, t := range traj.Times {
		fmt.Printf("  t=%.1f: %.3f, %.3f\n", t, traj.States[i][0], traj.States[i][1])
	}
}
