// Quickstart: build the paper's Figure 3 TAG model, solve it, and
// compare the three allocation strategies at a glance.
package main

import (
	"fmt"
	"log"

	"pepatags/internal/core"
	"pepatags/internal/dist"
)

func main() {
	// The paper's Section 5 system: Poisson(5) arrivals, exponential
	// service at rate 10, Erlang-6 timeout with phase rate 51 (the
	// optimal integer t at this load), both queues bounded at 10.
	tag := core.NewTAGExp(5, 10, 51, 6, 10, 10)
	m, err := tag.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TAG (t=51, %d states):\n", m.States)
	fmt.Printf("  mean queue length  %.4f (node1 %.4f, node2 %.4f)\n", m.L, m.L1, m.L2)
	fmt.Printf("  response time      %.4f\n", m.W)
	fmt.Printf("  throughput         %.4f jobs/s (loss %.3g)\n", m.Throughput, m.Loss)

	rnd, err := core.NewRandomTwoNode(5, dist.NewExponential(10), 10).Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random:   W = %.4f, L = %.4f\n", rnd.W, rnd.L)

	sq, err := core.NewShortestQueue(5, dist.NewExponential(10), 10).Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shortest: W = %.4f, L = %.4f\n", sq.W, sq.L)

	fmt.Println()
	fmt.Println("With exponential demand the shortest-queue policy wins —")
	fmt.Println("run examples/heavytail to see TAG turn the tables.")
}
