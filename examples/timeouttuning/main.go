// Timeouttuning: Section 4 of the paper — choosing the TAG timeout.
// Compares the analytic balance approximations against the exact
// optimum found by sweeping the full CTMC, for several loads.
package main

import (
	"fmt"
	"log"

	"pepatags/internal/approx"
)

func main() {
	const mu = 10.0
	const n = 6

	fmt.Println("== Section 4 balance approximations (mu = 10) ==")
	fmt.Printf("exponential-timeout balance: T = %.4f (paper: ~6.17)\n",
		approx.ExponentialBalanceTimeout(mu))
	for _, phases := range []int{1, 2, 6, 24, 96} {
		t, err := approx.ErlangRaceBalanceRate(mu, phases)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Erlang-%-3d race balance:     t = %8.3f  effective rate t/n = %.4f\n",
			phases, t, t/float64(phases))
	}
	fmt.Printf("deterministic limit:         effective rate = %.4f (paper: 'around 9')\n\n",
		approx.DeterministicBalanceRate(mu))

	fmt.Println("== bounded-queue two-stage decomposition vs exact CTMC optimum ==")
	fmt.Println("lambda   approx-opt-t   exact-opt-t  (minimising total queue length)")
	for _, lambda := range []float64{5, 7, 9, 11} {
		a := approx.TwoStage{Lambda: lambda, Mu: mu, N: n, K1: 10, K2: 10}
		ta, _ := a.OptimalRate(approx.MinQueueLength, 1, 200)
		te, _, err := approx.OptimalIntegerTExp(lambda, mu, n, 10, 10, approx.MinQueueLength, 12, 90)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6g   %12.1f   %11d\n", lambda, ta, te)
	}
	fmt.Println("\npaper's exact optima: 51, 49, 45, 42 for lambda = 5, 7, 9, 11")
}
