module pepatags

go 1.22
