// Package pepatags reproduces "Modelling job allocation where service
// duration is unknown" (Nigel Thomas, IPPS 2006): a PEPA/CTMC
// analysis of the TAG task-assignment policy — allocate every job to
// node 1, move it to node 2 if it exceeds a timeout — with bounded
// queues, phase-type service demands, analytic timeout
// approximations, a fluid (ODE) analysis and a discrete-event
// simulator.
//
// # Architecture
//
// The packages under internal/ form layers; each layer builds only on
// the ones below it:
//
//	cmd/pepa  cmd/tagseval  examples/           entry points
//	─────────────────────────────────────────
//	exp                                         one runner per figure/table (Sec. 5, 7)
//	─────────────────────────────────────────
//	sweep                                       batch engine: declarative specs,
//	                                              shape-keyed state-space cache,
//	                                              resumable journals (docs/SWEEPS.md)
//	─────────────────────────────────────────
//	core   approx   fluid   sim                 the paper's models and analyses:
//	                                              core   exact TAG CTMCs      (Sec. 3)
//	                                              approx balance heuristics   (Sec. 4)
//	                                              fluid  mean-field ODEs      (Sec. 3.1)
//	                                              sim    discrete-event sim   (Sec. 7)
//	─────────────────────────────────────────
//	pepa   queueing   policies   workload       modelling substrate:
//	                                              pepa   PEPA engine + derivation (Sec. 2)
//	                                              queueing closed-form baselines
//	─────────────────────────────────────────
//	ctmc   linalg   dist   stats   numeric      numerical foundation
//	─────────────────────────────────────────
//	obsv                                        instrumentation (stats + progress)
//
// A model is expressed either directly as a CTMC (internal/core) or
// as PEPA text (internal/pepa, Section 2 of the paper); both routes
// produce a ctmc.Chain whose generator is solved by internal/linalg
// for stationary measures, or integrated in time for transient ones.
// internal/exp turns those measures into the paper's figures and
// tables, and cmd/tagseval regenerates the lot. Grid evaluations —
// every figure of the paper's evaluation section, and user-authored
// parameter studies — run through internal/sweep, which expands a
// declarative spec into points, reuses the derived state space across
// points sharing a model shape, and journals results so interrupted
// runs resume byte-identically (tagseval -sweep; docs/SWEEPS.md).
//
// # Concurrency
//
// The two hot paths scale across cores without changing results:
// state-space derivation (pepa.DeriveOptions.Workers) uses a
// level-synchronous sharded BFS that is bit-identical to the serial
// reference, and the iterative solvers (linalg.Options.Workers) use
// row-partitioned gather products that are bit-identical for any
// worker count. DESIGN.md documents the design and the determinism
// arguments; EXPERIMENTS.md records measured behaviour.
//
// The benchmarks in bench_test.go cover serial-vs-parallel derivation
// and solving; `make bench` summarises them into BENCH_derive.json.
package pepatags
