// Package pepatags reproduces "Modelling job allocation where service
// duration is unknown" (Nigel Thomas, IPPS 2006): a PEPA/CTMC analysis
// of the TAG task-assignment policy with bounded queues, phase-type
// service demands, analytic timeout approximations, a fluid (ODE)
// analysis and a discrete-event simulator.
//
// The implementation lives under internal/ (see DESIGN.md for the
// module inventory); runnable entry points are the commands under
// cmd/ and the programs under examples/. The benchmarks in
// bench_test.go regenerate every figure and table of the paper's
// evaluation section.
package pepatags
